"""Temporal-graph and event-log (de)serialization.

Graphs are stored one-per-line as JSON objects (``jsonl``) with the
schema::

    {"name": ..., "labels": [...], "edges": [[src, dst, time], ...]}

The format round-trips exactly: labels by node id, edges with their
original timestamps.

Raw syscall event logs (the serving layer's replay feed) use the same
one-object-per-line convention::

    {"time": ..., "syscall": ..., "src_key": ..., "src_label": ...,
     "dst_key": ..., "dst_label": ...}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.core.errors import DatasetError
from repro.core.graph import TemporalGraph
from repro.syscall.events import SyscallEvent

__all__ = [
    "save_graphs_jsonl",
    "load_graphs_jsonl",
    "iter_graphs_jsonl",
    "graph_to_dict",
    "graph_from_dict",
    "save_corpus",
    "load_corpus",
    "iter_corpus",
    "corpus_behaviors",
    "save_events_jsonl",
    "load_events_jsonl",
    "iter_events_jsonl",
    "event_to_dict",
    "event_from_dict",
    "iter_jsonl_objects",
]

#: File name of the shared negative set inside a corpus directory.
BACKGROUND_FILE = "background.jsonl"


def iter_jsonl_objects(path: str | Path):
    """Yield ``(line_no, payload)`` per non-blank line of a jsonl file.

    The one framing loop shared by every jsonl loader in the repo
    (graphs, event logs, behavior queries), so blank-line handling and
    ``path:line`` error context stay uniform.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield line_no, json.loads(line)
                except json.JSONDecodeError as exc:
                    raise DatasetError(
                        f"{path}:{line_no}: invalid JSON: {exc}"
                    ) from exc
    except OSError as exc:
        raise DatasetError(f"cannot read {path}: {exc}") from exc


def graph_to_dict(graph: TemporalGraph) -> dict:
    """Serialize one graph to a JSON-compatible dict."""
    return {
        "name": graph.name,
        "labels": list(graph.labels),
        "edges": [[e.src, e.dst, e.time] for e in graph.edges],
    }


def graph_from_dict(payload: dict) -> TemporalGraph:
    """Deserialize one graph; validates and freezes it."""
    try:
        graph = TemporalGraph(name=payload.get("name", ""))
        for label in payload["labels"]:
            graph.add_node(str(label))
        for src, dst, time in payload["edges"]:
            graph.add_edge(int(src), int(dst), int(time))
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"malformed graph payload: {exc}") from exc
    return graph.freeze()


def save_graphs_jsonl(graphs: Iterable[TemporalGraph], path: str | Path) -> int:
    """Write graphs to a jsonl file; returns the number written."""
    count = 0
    try:
        with open(path, "w", encoding="utf-8") as handle:
            for graph in graphs:
                handle.write(json.dumps(graph_to_dict(graph)) + "\n")
                count += 1
    except OSError as exc:
        raise DatasetError(f"cannot write {path}: {exc}") from exc
    return count


def iter_graphs_jsonl(path: str | Path) -> Iterator[TemporalGraph]:
    """Stream graphs from a jsonl file one at a time.

    The generator twin of :func:`load_graphs_jsonl`: only one decoded
    graph is live at a time, which is what the corpus-store builder
    consumes so converting a corpus never materializes it.
    """
    for _line, payload in iter_jsonl_objects(path):
        yield graph_from_dict(payload)


def load_graphs_jsonl(path: str | Path) -> list[TemporalGraph]:
    """Read graphs from a jsonl file."""
    return list(iter_graphs_jsonl(path))


# ----------------------------------------------------------------------
# corpus directories — one jsonl file per behavior plus background.jsonl
# ----------------------------------------------------------------------
def save_corpus(train, root: str | Path) -> int:
    """Write a training corpus as a directory of jsonl graph files.

    Layout: ``<behavior>.jsonl`` per behavior plus ``background.jsonl``
    (the CLI ``generate`` format).  Returns the number of graphs written.
    """
    root = Path(root)
    try:
        root.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise DatasetError(f"cannot create corpus directory {root}: {exc}") from exc
    total = 0
    for name in train.config.behaviors:
        total += save_graphs_jsonl(train.behavior(name), root / f"{name}.jsonl")
    total += save_graphs_jsonl(train.background, root / BACKGROUND_FILE)
    return total


def corpus_behaviors(root: str | Path) -> list[str]:
    """Behavior names present in a corpus directory (sorted)."""
    root = Path(root)
    return sorted(p.stem for p in root.glob("*.jsonl") if p.name != BACKGROUND_FILE)


def _corpus_partitions(
    root: Path, behaviors: Sequence[str] | None
) -> list[tuple[str, Path]]:
    """Validate a corpus directory; ``(partition, file)`` pairs in load
    order (behaviors, then ``background``)."""
    bg_path = root / BACKGROUND_FILE
    if not bg_path.exists():
        raise DatasetError(f"corpus files missing under {root}: {BACKGROUND_FILE}")
    names = list(behaviors) if behaviors is not None else corpus_behaviors(root)
    missing = [n for n in names if not (root / f"{n}.jsonl").exists()]
    if missing:
        raise DatasetError(f"behavior files missing under {root}: {', '.join(missing)}")
    if not names:
        raise DatasetError(f"no behavior files under {root}")
    return [(n, root / f"{n}.jsonl") for n in names] + [(bg_path.stem, bg_path)]


def iter_corpus(
    root: str | Path, behaviors: Sequence[str] | None = None
) -> Iterator[tuple[str, TemporalGraph]]:
    """Stream a corpus directory as ``(partition, graph)`` pairs.

    The generator option :func:`load_corpus` is built on: behaviors in
    load order, then ``"background"`` for the shared negative set, one
    decoded graph live at a time.  Directory validation (missing
    background or behavior files) happens before the first yield.
    """
    for partition, path in _corpus_partitions(Path(root), behaviors):
        for graph in iter_graphs_jsonl(path):
            yield partition, graph


def load_corpus(root: str | Path, behaviors: Sequence[str] | None = None):
    """Load a corpus directory back into a ``TrainingData``.

    ``behaviors`` restricts the load to the named subset (the mining CLI
    loads one behavior plus background); ``None`` loads every behavior
    file.  Raises :class:`DatasetError` when requested files are missing.
    For a streaming walk that never materializes the corpus, use
    :func:`iter_corpus`.
    """
    from repro.syscall.collector import TrainingConfig, TrainingData

    root = Path(root)
    partitions = _corpus_partitions(root, behaviors)
    names = [name for name, _path in partitions[:-1]]
    behavior_graphs = {n: load_graphs_jsonl(root / f"{n}.jsonl") for n in names}
    background = load_graphs_jsonl(root / BACKGROUND_FILE)
    # rebuild the config from what is actually on disk; seed=-1 flags
    # that a corpus directory does not record its generation seed
    return TrainingData(
        config=TrainingConfig(
            behaviors=tuple(names),
            instances_per_behavior=max(
                1, min(len(graphs) for graphs in behavior_graphs.values())
            ),
            background_graphs=len(background),
            seed=-1,
        ),
        behaviors=behavior_graphs,
        background=background,
    )


def event_to_dict(event: SyscallEvent) -> dict:
    """Serialize one syscall event to the shared JSON schema.

    The one event codec: the jsonl log writer below and the HTTP
    ``POST /v1/ingest`` body both speak this shape, so a recorded log
    can be replayed over the wire line-for-line.
    """
    return {
        "time": event.time,
        "syscall": event.syscall,
        "src_key": event.src_key,
        "src_label": event.src_label,
        "dst_key": event.dst_key,
        "dst_label": event.dst_label,
    }


def event_from_dict(payload: dict) -> SyscallEvent:
    """Deserialize one syscall event; :class:`DatasetError` if malformed."""
    try:
        return SyscallEvent(
            time=int(payload["time"]),
            syscall=str(payload["syscall"]),
            src_key=str(payload["src_key"]),
            src_label=str(payload["src_label"]),
            dst_key=str(payload["dst_key"]),
            dst_label=str(payload["dst_label"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"malformed event payload: {exc}") from exc


def save_events_jsonl(events: Iterable[SyscallEvent], path: str | Path) -> int:
    """Write a raw syscall event log to a jsonl file; returns the count.

    Event logs are the replay feed of the streaming detection service
    (``python -m repro detect --log ...``).
    """
    count = 0
    try:
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event_to_dict(event)) + "\n")
                count += 1
    except OSError as exc:
        raise DatasetError(f"cannot write {path}: {exc}") from exc
    return count


def iter_events_jsonl(path: str | Path) -> Iterator[SyscallEvent]:
    """Stream a raw syscall event log one event at a time."""
    for line_no, payload in iter_jsonl_objects(path):
        try:
            yield event_from_dict(payload)
        except DatasetError as exc:
            raise DatasetError(f"{path}:{line_no}: {exc}") from exc


def load_events_jsonl(path: str | Path) -> list[SyscallEvent]:
    """Read a raw syscall event log from a jsonl file."""
    return list(iter_events_jsonl(path))
