"""Temporal-graph (de)serialization.

Graphs are stored one-per-line as JSON objects (``jsonl``) with the
schema::

    {"name": ..., "labels": [...], "edges": [[src, dst, time], ...]}

The format round-trips exactly: labels by node id, edges with their
original timestamps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.core.errors import DatasetError
from repro.core.graph import TemporalGraph

__all__ = ["save_graphs_jsonl", "load_graphs_jsonl", "graph_to_dict", "graph_from_dict"]


def graph_to_dict(graph: TemporalGraph) -> dict:
    """Serialize one graph to a JSON-compatible dict."""
    return {
        "name": graph.name,
        "labels": list(graph.labels),
        "edges": [[e.src, e.dst, e.time] for e in graph.edges],
    }


def graph_from_dict(payload: dict) -> TemporalGraph:
    """Deserialize one graph; validates and freezes it."""
    try:
        graph = TemporalGraph(name=payload.get("name", ""))
        for label in payload["labels"]:
            graph.add_node(str(label))
        for src, dst, time in payload["edges"]:
            graph.add_edge(int(src), int(dst), int(time))
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetError(f"malformed graph payload: {exc}") from exc
    return graph.freeze()


def save_graphs_jsonl(graphs: Iterable[TemporalGraph], path: str | Path) -> int:
    """Write graphs to a jsonl file; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for graph in graphs:
            handle.write(json.dumps(graph_to_dict(graph)) + "\n")
            count += 1
    return count


def load_graphs_jsonl(path: str | Path) -> list[TemporalGraph]:
    """Read graphs from a jsonl file."""
    graphs: list[TemporalGraph] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DatasetError(f"{path}:{line_no}: invalid JSON: {exc}") from exc
            graphs.append(graph_from_dict(payload))
    return graphs
