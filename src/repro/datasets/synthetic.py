"""Synthetic scalability datasets (paper Appendix N).

The paper's SYN-2 .. SYN-10 datasets replicate every training graph 2-10
times to measure how mining time scales with training-set size
(Figure 16).  Replication preserves per-graph structure exactly, so
pattern frequencies — and thus the explored pattern space — stay fixed
while the data volume grows linearly.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.errors import DatasetError
from repro.core.graph import TemporalGraph
from repro.syscall.collector import TrainingData

__all__ = ["replicate_graphs", "replicate_training_data"]


def replicate_graphs(
    graphs: Sequence[TemporalGraph],
    factor: int,
) -> list[TemporalGraph]:
    """Return each graph repeated ``factor`` times (SYN-``factor``).

    Graphs are immutable once frozen, so replicas share the underlying
    objects — matching the paper's protocol where replicas are byte-wise
    copies of the originals.
    """
    if factor < 1:
        raise DatasetError("replication factor must be >= 1")
    out: list[TemporalGraph] = []
    for _ in range(factor):
        out.extend(graphs)
    return out


def replicate_training_data(data: TrainingData, factor: int) -> TrainingData:
    """Replicate a whole training corpus (behaviors and background)."""
    return TrainingData(
        config=data.config,
        behaviors={
            name: replicate_graphs(graphs, factor)
            for name, graphs in data.behaviors.items()
        },
        background=replicate_graphs(data.background, factor),
    )
