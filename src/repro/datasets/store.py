"""Disk-backed corpus store: indexed on-disk edge columns in one SQLite file.

Every tier above this module — mining, batch query, the serving fleet —
consumes frozen :class:`~repro.core.graph.TemporalGraph` objects.  Until
now those always came from RAM: the whole corpus materialized per
process.  :class:`CorpusStore` moves the corpus to disk in a layout
where the two access patterns that matter are *indexed range scans*
instead of full materialization:

* **per-graph edge pages** — the frozen graph's flat int64 edge columns
  (``src``/``dst``/``time``, the exact :mod:`repro.core.buffers`
  encoding) split into fixed-size pages stored as typed blobs, with a
  SQL index on ``(graph, time-range)`` so extracting a time window
  touches only the overlapping pages;
* **the one-edge substructure index** — the same
  ``(src_label, dst_label) -> edge ids`` mapping a frozen graph keeps in
  RAM (:meth:`TemporalGraph.label_pair_index`), persisted per graph with
  a SQL index on the label pair so candidate lookup ("which graphs can
  possibly contain this pattern edge?") is a point query.

Node labels are interned store-wide (first-encounter order, exactly the
:class:`~repro.core.kernel.LabelInterner` contract): label *strings*
live once in a ``labels`` table and every column stores int64 ids.

Readers are streaming: :meth:`iter_graphs` decodes one graph at a time
(single-page graphs reconstruct zero-copy via ``memoryview.cast`` into
the blob, multi-page graphs concatenate into one ``array('q')``), and
:meth:`window` / :meth:`iter_windows` rebuild only the pages a time
range overlaps.  Reconstructed graphs go through
:meth:`TemporalGraph.from_frozen_columns`, so they are byte-identical to
the in-memory originals and build their CSR kernels lazily on first use,
exactly like the shared-memory attach path.

The file carries a schema version and per-object sha256 checksums
(:meth:`verify`), mirroring the ``.tgm`` bundle / registry conventions;
opening a store written by a newer schema raises
:class:`~repro.core.errors.DatasetError` telling the user to upgrade.

Memory-budget contract: a reader opened with ``memory_budget_mb`` caps
the SQLite page cache at a quarter of the budget and otherwise holds
O(one decoded graph or window) beyond it — so mining a corpus much
larger than the budget keeps peak RSS bounded as long as each single
graph fits (``benchmarks/bench_store.py`` enforces this).
"""

from __future__ import annotations

import hashlib
import sqlite3
from array import array
from bisect import bisect_right
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.core.buffers import INT_TYPECODE, IntColumn
from repro.core.errors import DatasetError
from repro.core.graph import TemporalGraph
from repro.syscall.events import SyscallEvent

__all__ = [
    "CorpusStore",
    "STORE_FORMAT",
    "STORE_SCHEMA_VERSION",
    "DEFAULT_PAGE_EDGES",
    "BACKGROUND_PARTITION",
]

#: ``meta.format`` marker distinguishing a corpus store from any other
#: SQLite file (the analogue of the ``.tgm`` bundle's format key).
STORE_FORMAT = "repro-corpus-store"

#: Bump on any incompatible layout change; readers refuse newer files.
STORE_SCHEMA_VERSION = 1

#: Edges per page blob.  Pages are the unit of both windowed reads and
#: decode granularity: 4096 int64 triples ≈ 96 KiB per page.
DEFAULT_PAGE_EDGES = 4096

#: Events per page blob in stored raw event logs.
DEFAULT_PAGE_EVENTS = 4096

#: Reserved partition name for the shared negative set (kind makes the
#: separation authoritative; the name mirrors ``background.jsonl``).
BACKGROUND_PARTITION = "background"

#: Entries kept in each direction of the in-process label cache.  Event
#: logs intern entity *keys* too, which are high-cardinality — an
#: unbounded cache would quietly break the memory-budget contract.
_LABEL_CACHE_CAP = 1 << 16

_SCHEMA = """
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE labels (id INTEGER PRIMARY KEY, label TEXT NOT NULL UNIQUE);
CREATE TABLE graphs (
    gid INTEGER PRIMARY KEY,
    kind TEXT NOT NULL,
    partition TEXT NOT NULL,
    name TEXT NOT NULL,
    num_nodes INTEGER NOT NULL,
    num_edges INTEGER NOT NULL,
    t_min INTEGER NOT NULL,
    t_max INTEGER NOT NULL,
    node_labels BLOB NOT NULL,
    checksum TEXT NOT NULL
);
CREATE INDEX graphs_by_partition ON graphs (kind, partition, gid);
CREATE TABLE edge_pages (
    gid INTEGER NOT NULL,
    page INTEGER NOT NULL,
    t_min INTEGER NOT NULL,
    t_max INTEGER NOT NULL,
    n INTEGER NOT NULL,
    src BLOB NOT NULL,
    dst BLOB NOT NULL,
    time BLOB NOT NULL,
    PRIMARY KEY (gid, page)
);
CREATE INDEX edge_pages_by_time ON edge_pages (gid, t_min, t_max);
CREATE TABLE pair_index (
    gid INTEGER NOT NULL,
    src_label INTEGER NOT NULL,
    dst_label INTEGER NOT NULL,
    n INTEGER NOT NULL,
    edge_ids BLOB NOT NULL,
    PRIMARY KEY (gid, src_label, dst_label)
);
CREATE INDEX pair_index_by_pair ON pair_index (src_label, dst_label);
CREATE TABLE event_pages (
    log TEXT NOT NULL,
    page INTEGER NOT NULL,
    t_min INTEGER NOT NULL,
    t_max INTEGER NOT NULL,
    n INTEGER NOT NULL,
    time BLOB NOT NULL,
    syscall BLOB NOT NULL,
    src_key BLOB NOT NULL,
    src_label BLOB NOT NULL,
    dst_key BLOB NOT NULL,
    dst_label BLOB NOT NULL,
    checksum TEXT NOT NULL,
    PRIMARY KEY (log, page)
);
"""


def _pack(values: Iterable[int]) -> bytes:
    """Encode an int sequence as a native int64 blob."""
    if isinstance(values, array) and values.typecode == INT_TYPECODE:
        return values.tobytes()
    return array(INT_TYPECODE, values).tobytes()


def _unpack(blob: bytes) -> memoryview:
    """Zero-copy int64 view over a blob (a valid ``IntColumn``)."""
    return memoryview(blob).cast(INT_TYPECODE)


def _column_bytes(column: IntColumn, lo: int, hi: int) -> bytes:
    """Native int64 bytes of ``column[lo:hi]`` for any column backend."""
    part = column[lo:hi]
    if isinstance(part, array):
        return part.tobytes()
    try:
        return memoryview(part).tobytes()
    except TypeError:
        return array(INT_TYPECODE, part).tobytes()


def _graph_checksum(
    name: str, labels: Sequence[str], src: bytes, dst: bytes, time: bytes
) -> str:
    """Content checksum over everything the store persists for a graph.

    Hashes label *strings* (not interner ids), so :meth:`CorpusStore.verify`
    catches corruption of the shared ``labels`` table as well as of the
    per-graph blobs.
    """
    digest = hashlib.sha256()
    digest.update(name.encode("utf-8"))
    digest.update(b"\x00")
    for label in labels:
        digest.update(label.encode("utf-8"))
        digest.update(b"\x1f")
    digest.update(src)
    digest.update(dst)
    digest.update(time)
    return digest.hexdigest()


def _page_checksum(blobs: Iterable[bytes]) -> str:
    digest = hashlib.sha256()
    for blob in blobs:
        digest.update(blob)
    return digest.hexdigest()


class CorpusStore:
    """A single-file, indexed, on-disk corpus of temporal graphs and logs.

    Create with :meth:`create` (read-write builder) or :meth:`open`
    (read-only; safe to open from many processes concurrently, which is
    how store-backed mining workers attach).  All SQLite and OS failures
    surface as :class:`~repro.core.errors.DatasetError`.
    """

    def __init__(
        self,
        conn: sqlite3.Connection,
        path: Path,
        *,
        writable: bool,
        page_edges: int,
        memory_budget_mb: float | None = None,
    ) -> None:
        self._conn = conn
        self._path = path
        self._writable = writable
        self._page_edges = page_edges
        self.memory_budget_mb = memory_budget_mb
        self._label_ids: dict[str, int] = {}
        self._id_labels: dict[int, str] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | Path,
        *,
        page_edges: int = DEFAULT_PAGE_EDGES,
        overwrite: bool = False,
    ) -> "CorpusStore":
        """Create a new store file and return it opened read-write."""
        if page_edges < 1:
            raise DatasetError(f"page_edges must be positive, got {page_edges}")
        path = Path(path)
        try:
            if path.exists():
                if not overwrite:
                    raise DatasetError(
                        f"corpus store already exists: {path} "
                        "(pass overwrite to replace it)"
                    )
                path.unlink()
            conn = sqlite3.connect(path)
            conn.execute("PRAGMA synchronous = NORMAL")
            with conn:
                conn.executescript(_SCHEMA)
                conn.executemany(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    [
                        ("format", STORE_FORMAT),
                        ("schema_version", str(STORE_SCHEMA_VERSION)),
                        ("page_edges", str(page_edges)),
                    ],
                )
        except (sqlite3.Error, OSError) as exc:
            raise DatasetError(f"cannot create corpus store {path}: {exc}") from exc
        return cls(conn, path, writable=True, page_edges=page_edges)

    @classmethod
    def open(
        cls, path: str | Path, *, memory_budget_mb: float | None = None
    ) -> "CorpusStore":
        """Open an existing store read-only.

        ``memory_budget_mb`` caps the SQLite page cache at a quarter of
        the budget (the rest of the budget belongs to the one decoded
        graph/window a streaming reader holds at a time).
        """
        path = Path(path)
        try:
            if not path.is_file():
                raise DatasetError(f"corpus store missing: {path}")
            uri = f"{path.resolve().as_uri()}?mode=ro"
            conn = sqlite3.connect(uri, uri=True)
            if memory_budget_mb is not None:
                cache_kb = max(256, int(memory_budget_mb * 1024 / 4))
                conn.execute(f"PRAGMA cache_size = -{cache_kb}")
            meta = dict(conn.execute("SELECT key, value FROM meta"))
        except DatasetError:
            raise
        except (sqlite3.Error, OSError) as exc:
            raise DatasetError(f"cannot open corpus store {path}: {exc}") from exc
        if meta.get("format") != STORE_FORMAT:
            conn.close()
            raise DatasetError(f"not a corpus store: {path}")
        version = int(meta.get("schema_version", "0"))
        if version > STORE_SCHEMA_VERSION:
            conn.close()
            raise DatasetError(
                f"corpus store {path} has schema version {version}, newer than "
                f"supported {STORE_SCHEMA_VERSION}; upgrade this installation"
            )
        return cls(
            conn,
            path,
            writable=False,
            page_edges=int(meta.get("page_edges", DEFAULT_PAGE_EDGES)),
            memory_budget_mb=memory_budget_mb,
        )

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        self._conn.close()

    def __enter__(self) -> "CorpusStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def path(self) -> Path:
        """The store file's path (what pool workers re-open)."""
        return self._path

    @property
    def page_edges(self) -> int:
        """Edges per page blob, fixed at :meth:`create` time."""
        return self._page_edges

    @contextmanager
    def _wrap(self):
        try:
            yield
        except DatasetError:
            raise
        except (sqlite3.Error, OSError) as exc:
            raise DatasetError(f"corpus store {self._path}: {exc}") from exc

    def _require_writable(self) -> None:
        if not self._writable:
            raise DatasetError(f"corpus store {self._path} is opened read-only")

    # ------------------------------------------------------------------
    # label interning (store-wide, bounded in-process caches)
    # ------------------------------------------------------------------
    def _intern(self, label: str) -> int:
        lid = self._label_ids.get(label)
        if lid is not None:
            return lid
        row = self._conn.execute(
            "SELECT id FROM labels WHERE label = ?", (label,)
        ).fetchone()
        if row is not None:
            lid = row[0]
        else:
            self._require_writable()
            lid = self._conn.execute(
                "INSERT INTO labels (label) VALUES (?)", (label,)
            ).lastrowid
        if len(self._label_ids) >= _LABEL_CACHE_CAP:
            self._label_ids.pop(next(iter(self._label_ids)))
        self._label_ids[label] = lid
        return lid

    def _label_of(self, lid: int) -> str:
        label = self._id_labels.get(lid)
        if label is not None:
            return label
        row = self._conn.execute(
            "SELECT label FROM labels WHERE id = ?", (lid,)
        ).fetchone()
        if row is None:
            raise DatasetError(
                f"corpus store {self._path}: dangling label id {lid}"
            )
        label = row[0]
        if len(self._id_labels) >= _LABEL_CACHE_CAP:
            self._id_labels.pop(next(iter(self._id_labels)))
        self._id_labels[lid] = label
        return label

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def add_graph(
        self, partition: str, graph: TemporalGraph, *, kind: str = "behavior"
    ) -> int:
        """Persist one frozen graph under ``partition``; returns its gid."""
        self._require_writable()
        if kind not in ("behavior", "background", "log"):
            raise DatasetError(f"unknown graph kind {kind!r}")
        if kind != "background" and partition == BACKGROUND_PARTITION:
            raise DatasetError(
                f"partition name {BACKGROUND_PARTITION!r} is reserved for the "
                "background set"
            )
        with self._wrap():
            graph.freeze()
            _base, src, dst, time = graph.edge_arrays()
            n = graph.num_edges
            src_b = _column_bytes(src, 0, n)
            dst_b = _column_bytes(dst, 0, n)
            time_b = _column_bytes(time, 0, n)
            with self._conn:
                label_blob = _pack(self._intern(label) for label in graph.labels)
                checksum = _graph_checksum(
                    graph.name, graph.labels, src_b, dst_b, time_b
                )
                t_min = int(time[0]) if n else 0
                t_max = int(time[n - 1]) if n else -1
                gid = self._conn.execute(
                    "INSERT INTO graphs (kind, partition, name, num_nodes,"
                    " num_edges, t_min, t_max, node_labels, checksum)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        kind,
                        partition,
                        graph.name,
                        graph.num_nodes,
                        n,
                        t_min,
                        t_max,
                        label_blob,
                        checksum,
                    ),
                ).lastrowid
                pages = []
                for page, lo in enumerate(range(0, n, self._page_edges)):
                    hi = min(lo + self._page_edges, n)
                    pages.append(
                        (
                            gid,
                            page,
                            int(time[lo]),
                            int(time[hi - 1]),
                            hi - lo,
                            src_b[lo * 8 : hi * 8],
                            dst_b[lo * 8 : hi * 8],
                            time_b[lo * 8 : hi * 8],
                        )
                    )
                self._conn.executemany(
                    "INSERT INTO edge_pages (gid, page, t_min, t_max, n,"
                    " src, dst, time) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    pages,
                )
                pairs = [
                    (
                        gid,
                        self._intern(src_label),
                        self._intern(dst_label),
                        len(edge_ids),
                        _pack(edge_ids),
                    )
                    for (src_label, dst_label), edge_ids in sorted(
                        graph.label_pair_index().items()
                    )
                ]
                self._conn.executemany(
                    "INSERT INTO pair_index (gid, src_label, dst_label, n,"
                    " edge_ids) VALUES (?, ?, ?, ?, ?)",
                    pairs,
                )
            return gid

    def add_graphs(
        self,
        partition: str,
        graphs: Iterable[TemporalGraph],
        *,
        kind: str = "behavior",
    ) -> int:
        """Persist a stream of graphs under one partition; returns count."""
        count = 0
        for graph in graphs:
            self.add_graph(partition, graph, kind=kind)
            count += 1
        return count

    def add_training_data(self, train) -> int:
        """Persist a ``TrainingData`` — behaviors in config order, then
        background.  Returns the number of graphs written."""
        total = 0
        for name in train.config.behaviors:
            total += self.add_graphs(name, train.behavior(name), kind="behavior")
        total += self.add_graphs(
            BACKGROUND_PARTITION, train.background, kind="background"
        )
        return total

    def add_log(
        self,
        name: str,
        *,
        graph: TemporalGraph | None = None,
        events: Iterable[SyscallEvent] = (),
    ) -> tuple[int, int]:
        """Persist a monitoring log: its graph (for windowed batch query)
        and/or its raw event stream (for streaming-detect replay).

        Returns ``(graphs_written, events_written)``.
        """
        graphs = 0
        if graph is not None:
            self.add_graph(name, graph, kind="log")
            graphs = 1
        return graphs, self.add_events(name, events)

    def add_events(self, log: str, events: Iterable[SyscallEvent]) -> int:
        """Append raw syscall events to ``log`` as paged columns."""
        self._require_writable()
        with self._wrap():
            row = self._conn.execute(
                "SELECT COALESCE(MAX(page) + 1, 0) FROM event_pages WHERE log = ?",
                (log,),
            ).fetchone()
            page = row[0]
            total = 0
            buffer: list[SyscallEvent] = []
            with self._conn:
                for event in events:
                    buffer.append(event)
                    if len(buffer) >= DEFAULT_PAGE_EVENTS:
                        self._write_event_page(log, page, buffer)
                        total += len(buffer)
                        page += 1
                        buffer = []
                if buffer:
                    self._write_event_page(log, page, buffer)
                    total += len(buffer)
            return total

    def _write_event_page(
        self, log: str, page: int, events: Sequence[SyscallEvent]
    ) -> None:
        times = _pack(event.time for event in events)
        columns = [
            _pack(self._intern(getattr(event, field)) for event in events)
            for field in ("syscall", "src_key", "src_label", "dst_key", "dst_label")
        ]
        blobs = [times, *columns]
        self._conn.execute(
            "INSERT INTO event_pages (log, page, t_min, t_max, n, time,"
            " syscall, src_key, src_label, dst_key, dst_label, checksum)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                log,
                page,
                min(event.time for event in events),
                max(event.time for event in events),
                len(events),
                *blobs,
                _page_checksum(blobs),
            ),
        )

    # ------------------------------------------------------------------
    # catalog reads
    # ------------------------------------------------------------------
    def behaviors(self) -> list[str]:
        """Behavior partition names in first-insertion order."""
        with self._wrap():
            return [
                row[0]
                for row in self._conn.execute(
                    "SELECT partition FROM graphs WHERE kind = 'behavior'"
                    " GROUP BY partition ORDER BY MIN(gid)"
                )
            ]

    def logs(self) -> list[str]:
        """Log names present (graph partitions and/or event streams)."""
        with self._wrap():
            names = [
                row[0]
                for row in self._conn.execute(
                    "SELECT partition FROM graphs WHERE kind = 'log'"
                    " GROUP BY partition ORDER BY MIN(gid)"
                )
            ]
            seen = set(names)
            for (name,) in self._conn.execute(
                "SELECT DISTINCT log FROM event_pages ORDER BY log"
            ):
                if name not in seen:
                    names.append(name)
            return names

    def graph_count(self, partition: str, kind: str | None = None) -> int:
        """Number of graphs stored under ``partition``."""
        with self._wrap():
            return self._count_graphs(partition, kind)

    def _count_graphs(self, partition: str, kind: str | None) -> int:
        sql = "SELECT COUNT(*) FROM graphs WHERE partition = ?"
        params: list = [partition]
        if kind is not None:
            sql += " AND kind = ?"
            params.append(kind)
        return self._conn.execute(sql, params).fetchone()[0]

    def event_count(self, log: str) -> int:
        """Number of raw events stored under ``log``."""
        with self._wrap():
            return self._conn.execute(
                "SELECT COALESCE(SUM(n), 0) FROM event_pages WHERE log = ?", (log,)
            ).fetchone()[0]

    def extent(self, partition: str) -> tuple[int, int]:
        """``(t_min, t_max)`` over the partition's non-empty graphs."""
        with self._wrap():
            row = self._conn.execute(
                "SELECT MIN(t_min), MAX(t_max) FROM graphs"
                " WHERE partition = ? AND num_edges > 0",
                (partition,),
            ).fetchone()
            if row[0] is None:
                raise DatasetError(
                    f"corpus store {self._path}: partition {partition!r} has "
                    "no edges (or does not exist)"
                )
            return row[0], row[1]

    def max_span(self, partition: str) -> int:
        """Largest single-graph lifetime (last - first edge time) in the
        partition — what the span-cap rule reads, without decoding pages.

        0 when every graph is empty (matching
        ``span_cap_for_graphs(..., slack=1)`` semantics); raises when the
        partition does not exist at all.
        """
        with self._wrap():
            row = self._conn.execute(
                "SELECT MAX(t_max - t_min) FROM graphs"
                " WHERE partition = ? AND num_edges > 0",
                (partition,),
            ).fetchone()
            if row[0] is None:
                if self._count_graphs(partition, None) == 0:
                    raise DatasetError(
                        f"corpus store {self._path}: no partition {partition!r}"
                    )
                return 0
            return row[0]

    def pair_labels(self, partition: str) -> set[tuple[str, str]]:
        """All ``(src_label, dst_label)`` pairs occurring in a partition.

        The store-level face of the one-edge substructure index: a query
        pattern containing a pair absent from this set cannot match
        anywhere in the partition, so callers skip it without decoding a
        single edge page.
        """
        with self._wrap():
            return {
                (self._label_of(src), self._label_of(dst))
                for src, dst in self._conn.execute(
                    "SELECT DISTINCT p.src_label, p.dst_label FROM pair_index p"
                    " JOIN graphs g ON g.gid = p.gid WHERE g.partition = ?",
                    (partition,),
                )
            }

    def graphs_with_pair(
        self, src_label: str, dst_label: str
    ) -> list[tuple[str, str, int]]:
        """Candidate lookup: ``(partition, graph name, occurrence count)``
        for every stored graph containing the one-edge substructure."""
        with self._wrap():
            src = self._conn.execute(
                "SELECT id FROM labels WHERE label = ?", (src_label,)
            ).fetchone()
            dst = self._conn.execute(
                "SELECT id FROM labels WHERE label = ?", (dst_label,)
            ).fetchone()
            if src is None or dst is None:
                return []
            return [
                (partition, name, count)
                for partition, name, count in self._conn.execute(
                    "SELECT g.partition, g.name, p.n FROM pair_index p"
                    " JOIN graphs g ON g.gid = p.gid"
                    " WHERE p.src_label = ? AND p.dst_label = ? ORDER BY g.gid",
                    (src[0], dst[0]),
                )
            ]

    # ------------------------------------------------------------------
    # graph reads (streaming)
    # ------------------------------------------------------------------
    def iter_graphs(
        self, partition: str, *, kind: str | None = None
    ) -> Iterator[TemporalGraph]:
        """Yield the partition's graphs one at a time, insertion order."""
        with self._wrap():
            sql = (
                "SELECT gid, name, node_labels FROM graphs WHERE partition = ?"
            )
            params: list = [partition]
            if kind is not None:
                sql += " AND kind = ?"
                params.append(kind)
            sql += " ORDER BY gid"
            for gid, name, label_blob in self._conn.execute(sql, params).fetchall():
                yield self._materialize(gid, name, label_blob)

    def load_graphs(
        self, partition: str, *, kind: str | None = None
    ) -> list[TemporalGraph]:
        """Materialize the whole partition (the non-streaming read)."""
        return list(self.iter_graphs(partition, kind=kind))

    def iter_graph_labels(
        self, partition: str, *, kind: str | None = None
    ) -> Iterator[list[str]]:
        """Yield each graph's node-label list without decoding edge pages.

        Enough for interest-model fitting and interner construction —
        the two full-corpus passes mining makes besides per-behavior
        pattern growth — at a fraction of a full decode.
        """
        with self._wrap():
            sql = "SELECT node_labels FROM graphs WHERE partition = ?"
            params: list = [partition]
            if kind is not None:
                sql += " AND kind = ?"
                params.append(kind)
            sql += " ORDER BY gid"
            for (label_blob,) in self._conn.execute(sql, params):
                yield [self._label_of(lid) for lid in _unpack(label_blob)]

    def _materialize(self, gid: int, name: str, label_blob: bytes) -> TemporalGraph:
        labels = [self._label_of(lid) for lid in _unpack(label_blob)]
        pages = self._conn.execute(
            "SELECT src, dst, time FROM edge_pages WHERE gid = ? ORDER BY page",
            (gid,),
        ).fetchall()
        if len(pages) == 1:
            src_b, dst_b, time_b = pages[0]
            src, dst, time = _unpack(src_b), _unpack(dst_b), _unpack(time_b)
        else:
            src = array(INT_TYPECODE)
            dst = array(INT_TYPECODE)
            time = array(INT_TYPECODE)
            for src_b, dst_b, time_b in pages:
                src.frombytes(src_b)
                dst.frombytes(dst_b)
                time.frombytes(time_b)
        return TemporalGraph.from_frozen_columns(name, labels, src, dst, time)

    def load_training_data(self, behaviors: Sequence[str] | None = None):
        """Materialize the store back into a ``TrainingData``.

        The config is rebuilt from what is on disk exactly like
        :func:`repro.datasets.io.load_corpus` does for directories
        (``seed=-1``: a store does not record its generation seed), so
        in-memory mining over the result is byte-identical to mining
        the corpus the store was built from.
        """
        from repro.syscall.collector import TrainingConfig, TrainingData

        names = list(behaviors) if behaviors is not None else self.behaviors()
        if not names:
            raise DatasetError(f"no behavior partitions in store {self._path}")
        missing = [
            n for n in names if self.graph_count(n, kind="behavior") == 0
        ]
        if missing:
            raise DatasetError(
                f"behavior partitions missing in store {self._path}: "
                f"{', '.join(missing)}"
            )
        behavior_graphs = {
            name: self.load_graphs(name, kind="behavior") for name in names
        }
        background = self.load_graphs(BACKGROUND_PARTITION, kind="background")
        return TrainingData(
            config=TrainingConfig(
                behaviors=tuple(names),
                instances_per_behavior=max(
                    1, min(len(graphs) for graphs in behavior_graphs.values())
                ),
                background_graphs=len(background),
                seed=-1,
            ),
            behaviors=behavior_graphs,
            background=background,
        )

    # ------------------------------------------------------------------
    # windowed reads
    # ------------------------------------------------------------------
    def window(
        self, partition: str, start: int, end: int, *, name: str = ""
    ) -> TemporalGraph:
        """Extract ``graph.window(start, end)`` of a single-graph partition
        by indexed range scan — only pages overlapping the range decode.

        Byte-identical to :meth:`TemporalGraph.window` on the
        materialized graph: same first-encounter node remap, same edge
        order, same default name.
        """
        with self._wrap():
            rows = self._conn.execute(
                "SELECT gid, name, node_labels FROM graphs WHERE partition = ?"
                " ORDER BY gid",
                (partition,),
            ).fetchall()
            if not rows:
                raise DatasetError(
                    f"corpus store {self._path}: no partition {partition!r}"
                )
            if len(rows) > 1:
                raise DatasetError(
                    f"corpus store {self._path}: window() needs a single-graph "
                    f"partition; {partition!r} holds {len(rows)} graphs"
                )
            gid, graph_name, label_blob = rows[0]
            label_ids = _unpack(label_blob)
            sub = TemporalGraph(name=name or f"{graph_name}[{start},{end}]")
            remap: dict[int, int] = {}
            for src_b, dst_b, time_b in self._conn.execute(
                "SELECT src, dst, time FROM edge_pages"
                " WHERE gid = ? AND t_max >= ? AND t_min <= ? ORDER BY page",
                (gid, start, end),
            ):
                src = _unpack(src_b)
                dst = _unpack(dst_b)
                time = _unpack(time_b)
                for i in range(bisect_right(time, start - 1), len(time)):
                    t = time[i]
                    if t > end:
                        break
                    for node in (src[i], dst[i]):
                        if node not in remap:
                            remap[node] = sub.add_node(
                                self._label_of(label_ids[node])
                            )
                    sub.add_edge(remap[src[i]], remap[dst[i]], t)
            return sub.freeze()

    def iter_windows(
        self,
        partition: str,
        width: int,
        overlap: int = 0,
        *,
        start: int | None = None,
        end: int | None = None,
    ) -> Iterator[tuple[int, TemporalGraph]]:
        """Yield ``(window_start, window_graph)`` sweeping the partition.

        Windows are ``[t, t + width]`` inclusive, advancing by
        ``width - overlap``.  With ``overlap >= max match span`` every
        bounded-span match falls entirely inside at least one window —
        the soundness condition the store-backed query scan relies on.
        """
        if width < 1:
            raise DatasetError(f"window width must be positive, got {width}")
        if not 0 <= overlap < width:
            raise DatasetError(
                f"window overlap must be in [0, width), got {overlap}"
            )
        lo, hi = self.extent(partition)
        if start is not None:
            lo = max(lo, start)
        if end is not None:
            hi = min(hi, end)
        t = lo
        while t <= hi:
            yield t, self.window(partition, t, t + width)
            t += width - overlap

    # ------------------------------------------------------------------
    # event reads (streaming replay)
    # ------------------------------------------------------------------
    def iter_events(
        self, log: str, *, start: int | None = None, end: int | None = None
    ) -> Iterator[SyscallEvent]:
        """Replay a stored event log, optionally restricted to a time
        range — boundary pages are filtered, interior pages stream whole."""
        with self._wrap():
            exists = self._conn.execute(
                "SELECT 1 FROM event_pages WHERE log = ? LIMIT 1", (log,)
            ).fetchone()
            if exists is None:
                raise DatasetError(
                    f"corpus store {self._path}: no event log {log!r}"
                )
            sql = (
                "SELECT time, syscall, src_key, src_label, dst_key, dst_label, n"
                " FROM event_pages WHERE log = ?"
            )
            params: list = [log]
            if start is not None:
                sql += " AND t_max >= ?"
                params.append(start)
            if end is not None:
                sql += " AND t_min <= ?"
                params.append(end)
            sql += " ORDER BY page"
            for row in self._conn.execute(sql, params):
                times = _unpack(row[0])
                columns = [_unpack(blob) for blob in row[1:6]]
                for i in range(row[6]):
                    t = times[i]
                    if (start is not None and t < start) or (
                        end is not None and t > end
                    ):
                        continue
                    yield SyscallEvent(
                        time=t,
                        syscall=self._label_of(columns[0][i]),
                        src_key=self._label_of(columns[1][i]),
                        src_label=self._label_of(columns[2][i]),
                        dst_key=self._label_of(columns[3][i]),
                        dst_label=self._label_of(columns[4][i]),
                    )

    def iter_event_batches(
        self,
        log: str,
        batch_size: int,
        *,
        start: int | None = None,
        end: int | None = None,
    ) -> Iterator[list[SyscallEvent]]:
        """Re-chunk a stored event stream into exact ``batch_size`` lists
        (the shape ``Ingestor.ingest`` and the replay loops expect)."""
        if batch_size < 1:
            raise DatasetError(f"batch_size must be positive, got {batch_size}")
        batch: list[SyscallEvent] = []
        for event in self.iter_events(log, start=start, end=end):
            batch.append(event)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    # ------------------------------------------------------------------
    # inspection & integrity
    # ------------------------------------------------------------------
    def info(self) -> dict:
        """Catalog summary (the ``repro corpus info`` payload)."""
        with self._wrap():
            graphs, edges = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(num_edges), 0) FROM graphs"
            ).fetchone()
            labels = self._conn.execute("SELECT COUNT(*) FROM labels").fetchone()[0]
            return {
                "path": str(self._path),
                "format": STORE_FORMAT,
                "schema_version": STORE_SCHEMA_VERSION,
                "page_edges": self._page_edges,
                "graphs": graphs,
                "edges": edges,
                "labels": labels,
                "behaviors": {
                    name: self._count_graphs(name, "behavior")
                    for name in self.behaviors()
                },
                "background_graphs": self._count_graphs(
                    BACKGROUND_PARTITION, "background"
                ),
                "logs": {name: self.event_count(name) for name in self.logs()},
                "file_bytes": self._path.stat().st_size,
            }

    def verify(self) -> dict:
        """Recompute every stored checksum; raise on the first mismatch.

        Returns ``{"graphs": n, "event_pages": m}`` on success.  This is
        the store's analogue of the ``.tgm`` bundle integrity check.
        """
        with self._wrap():
            integrity = self._conn.execute("PRAGMA integrity_check").fetchone()
            if integrity[0] != "ok":
                raise DatasetError(
                    f"corpus store {self._path}: SQLite integrity check failed: "
                    f"{integrity[0]}"
                )
            graphs = 0
            for gid, name, num_edges, label_blob, checksum in self._conn.execute(
                "SELECT gid, name, num_edges, node_labels, checksum FROM graphs"
                " ORDER BY gid"
            ).fetchall():
                labels = [self._label_of(lid) for lid in _unpack(label_blob)]
                src_b = b""
                dst_b = b""
                time_b = b""
                pages = 0
                for page_src, page_dst, page_time, n in self._conn.execute(
                    "SELECT src, dst, time, n FROM edge_pages WHERE gid = ?"
                    " ORDER BY page",
                    (gid,),
                ):
                    src_b += page_src
                    dst_b += page_dst
                    time_b += page_time
                    pages += n
                if pages != num_edges:
                    raise DatasetError(
                        f"corpus store {self._path}: graph {name!r} (gid {gid}) "
                        f"has {pages} paged edges, catalog says {num_edges}"
                    )
                actual = _graph_checksum(name, labels, src_b, dst_b, time_b)
                if actual != checksum:
                    raise DatasetError(
                        f"corpus store {self._path}: checksum mismatch on graph "
                        f"{name!r} (gid {gid})"
                    )
                graphs += 1
            event_pages = 0
            for log, page, checksum, *blobs in self._conn.execute(
                "SELECT log, page, checksum, time, syscall, src_key, src_label,"
                " dst_key, dst_label FROM event_pages ORDER BY log, page"
            ).fetchall():
                if _page_checksum(blobs) != checksum:
                    raise DatasetError(
                        f"corpus store {self._path}: checksum mismatch on event "
                        f"page {log!r}/{page}"
                    )
                event_pages += 1
            return {"graphs": graphs, "event_pages": event_pages}
