"""Dataset utilities: (de)serialization and synthetic scaling."""

from repro.datasets.io import load_graphs_jsonl, save_graphs_jsonl
from repro.datasets.synthetic import replicate_graphs, replicate_training_data

__all__ = [
    "load_graphs_jsonl",
    "save_graphs_jsonl",
    "replicate_graphs",
    "replicate_training_data",
]
