"""Dataset utilities: (de)serialization, synthetic scaling, disk store."""

from repro.datasets.io import (
    iter_corpus,
    iter_graphs_jsonl,
    load_corpus,
    load_graphs_jsonl,
    save_corpus,
    save_graphs_jsonl,
)
from repro.datasets.store import (
    BACKGROUND_PARTITION,
    DEFAULT_PAGE_EDGES,
    STORE_SCHEMA_VERSION,
    CorpusStore,
)
from repro.datasets.synthetic import replicate_graphs, replicate_training_data

__all__ = [
    "BACKGROUND_PARTITION",
    "CorpusStore",
    "DEFAULT_PAGE_EDGES",
    "STORE_SCHEMA_VERSION",
    "iter_corpus",
    "iter_graphs_jsonl",
    "load_corpus",
    "load_graphs_jsonl",
    "save_corpus",
    "save_graphs_jsonl",
    "replicate_graphs",
    "replicate_training_data",
]
