"""Precision / recall evaluation of behavior queries (paper Section 6.2).

Definitions from the paper:

* an **identified instance** is a match of the behavior query, judged by
  the time interval during which the match happened;
* an identified instance is **correct** if its interval is fully
  contained in the execution interval of a true instance of the target
  behavior;
* a true instance is **discovered** if at least one correct identified
  instance falls inside it;
* ``precision = #correct / #identified`` and
  ``recall = #discovered / #instances``.

When a behavior query consists of several patterns (the paper uses the
top-5), the identified instances of all patterns are pooled before
scoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.syscall.collector import GroundTruthInstance

__all__ = ["PrecisionRecall", "evaluate_spans", "pool_spans"]

Span = tuple[int, int]


@dataclass(frozen=True)
class PrecisionRecall:
    """Accuracy of one behavior query against the ground truth."""

    behavior: str
    identified: int
    correct: int
    discovered: int
    total_instances: int

    @property
    def precision(self) -> float:
        """``#correct / #identified`` (1.0 when nothing was identified)."""
        if self.identified == 0:
            return 1.0
        return self.correct / self.identified

    @property
    def recall(self) -> float:
        """``#discovered / #instances`` (1.0 when no instances exist)."""
        if self.total_instances == 0:
            return 1.0
        return self.discovered / self.total_instances

    def as_dict(self) -> dict:
        """JSON-compatible form (evaluation reports and the CLI dump this)."""
        return {
            "behavior": self.behavior,
            "identified": self.identified,
            "correct": self.correct,
            "discovered": self.discovered,
            "total_instances": self.total_instances,
            "precision": self.precision,
            "recall": self.recall,
        }

    def as_row(self) -> str:
        """One formatted row for experiment tables."""
        return (
            f"{self.behavior:20s} precision={self.precision * 100:6.1f}% "
            f"recall={self.recall * 100:6.1f}% "
            f"({self.correct}/{self.identified} correct, "
            f"{self.discovered}/{self.total_instances} discovered)"
        )


def pool_spans(span_lists: Iterable[Sequence[Span]]) -> list[Span]:
    """Union the identified instances of several patterns (top-5 pooling)."""
    pooled: set[Span] = set()
    for spans in span_lists:
        pooled.update(spans)
    return sorted(pooled)


def evaluate_spans(
    behavior: str,
    spans: Sequence[Span],
    truth: Sequence[GroundTruthInstance],
) -> PrecisionRecall:
    """Score identified-instance spans against the ground truth.

    ``truth`` may contain instances of all behaviors; only the target
    behavior's instances count as correct containers, exactly as in the
    paper (a match landing inside a *different* behavior's execution is a
    false positive).
    """
    targets = sorted(
        (gt for gt in truth if gt.behavior == behavior), key=lambda gt: gt.start
    )
    correct = 0
    discovered_flags = [False] * len(targets)
    starts = [gt.start for gt in targets]
    from bisect import bisect_right

    for start, end in spans:
        # Instance intervals never overlap, so the only candidate
        # container is the latest instance starting at or before `start`.
        pos = bisect_right(starts, start) - 1
        if pos >= 0 and targets[pos].end >= end:
            discovered_flags[pos] = True
            correct += 1
    return PrecisionRecall(
        behavior=behavior,
        identified=len(spans),
        correct=correct,
        discovered=sum(discovered_flags),
        total_instances=len(targets),
    )
