"""Behavior-query search over monitoring graphs (paper Section 6.1).

The paper treats query processing as an existing capability ([38]) — the
contribution is *formulating* the queries.  This engine provides the
three match semantics the experiments need, each returning the distinct
time spans of identified instances:

* **temporal** — a temporal-pattern match (order-preserving, Section 2)
  whose span does not exceed the behavior's lifetime cap;
* **non-temporal** — an ``Ntemp`` query: the pattern's structure matched
  with edge order ignored, inside a bounded window around an anchor
  occurrence;
* **node-set** — a ``NodeSet`` keyword query: all ``k`` labels active
  within a window no longer than the lifetime cap.

Identified instances are deduplicated by their time span: the evaluation
semantics of Section 6.2 judge an identified instance by the interval
during which the match happened, so span-identical matches are one
instance.

The engine owns a :class:`~repro.core.graph_index.CandidateFilter` over
the test graph (on by default): temporal and non-temporal searches first
compare the query's label signature against the graph's — a query whose
node labels or edge label pairs do not occur often enough in the log
cannot match anywhere, so the search is answered empty without touching
the edge index.  Disable with ``QueryEngine(graph, use_index=False)``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import Counter
from typing import Sequence

from repro.baselines.gspan import (
    NonTemporalPattern,
    enumerate_nontemporal_matches,
)
from repro.baselines.nodeset import NodeSetQuery
from repro.core.errors import GraphError, QueryError
from repro.core.graph import TemporalGraph
from repro.core.graph_index import (
    DEFAULT_MATCH_LIMIT,
    CandidateFilter,
    find_matches,
    match_span,
)
from repro.core.pattern import TemporalPattern

__all__ = ["QueryEngine"]

Span = tuple[int, int]


class QueryEngine:
    """Searches one (large) monitoring temporal graph.

    The engine is built once per test graph; the graph's one-edge index
    (built at freeze time) and its label signature are shared across all
    queries.  ``use_index=False`` disables the signature prefilter (the
    answer sets are identical; only impossible-query searches get slower).
    """

    def __init__(self, graph: TemporalGraph, use_index: bool = True) -> None:
        if not graph.frozen:
            try:
                graph.freeze()
            except GraphError as exc:
                raise QueryError(
                    f"cannot build a query engine over graph "
                    f"{graph.name or '<unnamed>'!s}: freezing failed ({exc}); "
                    "sequentialize concurrent edges first (see "
                    "repro.core.concurrent) or pass an already-frozen graph"
                ) from exc
        self.graph = graph
        # warm the graph's flat edge columns so the kernel-path join in
        # find_matches (and the scans below) never pay a lazy build
        # inside a timed query
        graph.edge_arrays()
        self.filter = CandidateFilter() if use_index else None

    # ------------------------------------------------------------------
    # temporal behavior queries (TGMiner)
    # ------------------------------------------------------------------
    def search_temporal(
        self,
        pattern: TemporalPattern,
        max_span: int,
        match_limit: int = DEFAULT_MATCH_LIMIT,
    ) -> list[Span]:
        """Distinct spans of temporal matches within the span cap."""
        if max_span < 0:
            raise QueryError("max_span must be non-negative")
        if self.filter is not None and not self.filter.pattern_vs_graph(
            pattern, self.graph
        ):
            return []
        spans: set[Span] = set()
        for match in find_matches(
            pattern, self.graph, max_span=max_span, limit=match_limit
        ):
            spans.add(match_span(match, self.graph))
        return sorted(spans)

    def search_query(self, query) -> list[Span]:
        """Spans for one registered-style behavior query.

        Accepts anything exposing ``pattern`` and ``max_span`` —
        :class:`~repro.serving.registry.BehaviorQuery` in practice — so
        the batch engine answers exactly what the streaming service
        registers (the mine → save → load → query SDK path).
        """
        return self.search_temporal(query.pattern, query.max_span)

    # ------------------------------------------------------------------
    # non-temporal behavior queries (Ntemp)
    # ------------------------------------------------------------------
    def search_nontemporal(
        self,
        pattern: NonTemporalPattern,
        max_span: int,
        per_window_limit: int = 64,
    ) -> list[Span]:
        """Distinct spans of order-free structure matches.

        The search anchors on the pattern's rarest label pair: every
        occurrence of that pair defines a candidate window of width
        ``2 * max_span`` in which the full structure is matched without
        order constraints.  A match's span is the tightest interval
        covering one occurrence of every pattern edge (each taken nearest
        to the anchor).
        """
        if pattern.num_edges == 0:
            raise QueryError("empty non-temporal pattern")
        if self.filter is not None and not self.filter.labels_vs_graph(
            Counter(pattern.label(n) for n in range(pattern.num_nodes)),
            {(pattern.label(u), pattern.label(v)) for u, v in pattern.edges},
            self.graph,
        ):
            return []
        anchor_pair = min(
            (
                (pattern.label(u), pattern.label(v))
                for u, v in pattern.edges
            ),
            key=lambda pair: len(self.graph.edges_between(*pair)),
        )
        anchor_edges = self.graph.edges_between(*anchor_pair)
        spans: set[Span] = set()
        seen_windows: set[Span] = set()
        for idx in anchor_edges:
            t = self.graph.edges[idx].time
            lo, hi = max(0, t - max_span), t + max_span
            if (lo, hi) in seen_windows:
                continue
            seen_windows.add((lo, hi))
            window = self.graph.window(lo, hi)
            spans |= self._match_window(pattern, window, t, max_span, per_window_limit)
        return sorted(spans)

    def _match_window(
        self,
        pattern: NonTemporalPattern,
        window: TemporalGraph,
        anchor_time: int,
        max_span: int,
        limit: int,
    ) -> set[Span]:
        adjacency: set[tuple[int, int]] = set()
        pair_times: dict[tuple[int, int], list[int]] = {}
        nodes_by_label: dict[str, list[int]] = {}
        for node in range(window.num_nodes):
            nodes_by_label.setdefault(window.label(node), []).append(node)
        for edge in window.edges:
            adjacency.add((edge.src, edge.dst))
            pair_times.setdefault((edge.src, edge.dst), []).append(edge.time)
        spans: set[Span] = set()
        for assignment in enumerate_nontemporal_matches(
            pattern, window.labels, adjacency, nodes_by_label, limit=limit
        ):
            times: list[int] = []
            for u, v in pattern.edges:
                options = pair_times[(assignment[u], assignment[v])]
                nearest = min(options, key=lambda t: abs(t - anchor_time))
                times.append(nearest)
            lo, hi = min(times), max(times)
            if hi - lo <= max_span:
                spans.add((lo, hi))
        return spans

    # ------------------------------------------------------------------
    # node-set keyword queries (NodeSet)
    # ------------------------------------------------------------------
    def search_nodeset(
        self,
        query: NodeSetQuery,
        max_span: int | None = None,
    ) -> list[Span]:
        """Minimal windows where all query labels have active nodes.

        Sweeps the label-activity event stream with two pointers and
        records every *minimal* window covering all ``k`` labels whose
        length respects the cap — each such window is one identified
        instance.
        """
        cap = query.max_span if max_span is None else max_span
        wanted = set(query.labels)
        if not wanted:
            raise QueryError("empty node-set query")
        _base, srcs, dsts, times = self.graph.edge_arrays()
        labels = self.graph.labels
        events: list[tuple[int, str]] = []
        for i in range(self.graph.num_edges):
            src_label = labels[srcs[i]]
            dst_label = labels[dsts[i]]
            if src_label in wanted:
                events.append((times[i], src_label))
            if dst_label in wanted:
                events.append((times[i], dst_label))
        events.sort()
        spans: set[Span] = set()
        counts: dict[str, int] = {}
        covered = 0
        left = 0
        for right, (t_right, label_right) in enumerate(events):
            counts[label_right] = counts.get(label_right, 0) + 1
            if counts[label_right] == 1:
                covered += 1
            while covered == len(wanted):
                t_left, label_left = events[left]
                if t_right - t_left <= cap:
                    spans.add((t_left, t_right))
                counts[label_left] -= 1
                if counts[label_left] == 0:
                    covered -= 1
                left += 1
        return sorted(spans)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def label_activity(self, label: str) -> list[int]:
        """Times at which a node with ``label`` touches an edge (sorted)."""
        _base, srcs, dsts, edge_times = self.graph.edge_arrays()
        labels = self.graph.labels
        times: list[int] = []
        for i in range(self.graph.num_edges):
            if labels[srcs[i]] == label or labels[dsts[i]] == label:
                times.append(edge_times[i])
        return times

    def count_in_interval(self, times: Sequence[int], start: int, end: int) -> int:
        """Number of ``times`` within ``[start, end]`` (times sorted)."""
        return bisect_right(times, end) - bisect_left(times, start)
