"""Behavior-query search and accuracy evaluation (paper Section 6.2)."""

from repro.query.engine import QueryEngine
from repro.query.evaluation import (
    PrecisionRecall,
    evaluate_spans,
)

__all__ = ["QueryEngine", "PrecisionRecall", "evaluate_spans"]
