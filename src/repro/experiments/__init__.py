"""Experiment harness shared by the benchmarks and examples."""

from repro.experiments.harness import (
    BehaviorAccuracy,
    accuracy_for_behavior,
    formulate_nodeset_query,
    formulate_ntemp_queries,
    formulate_tgminer_queries,
    mine_all_behaviors,
    mine_behavior,
    span_cap,
)

__all__ = [
    "BehaviorAccuracy",
    "accuracy_for_behavior",
    "formulate_nodeset_query",
    "formulate_ntemp_queries",
    "formulate_tgminer_queries",
    "mine_all_behaviors",
    "mine_behavior",
    "span_cap",
]
