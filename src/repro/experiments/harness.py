"""End-to-end pipeline pieces for the paper's experiments (Section 6).

This module wires the full behavior-query formulation pipeline of
Figure 2 — mine discriminative patterns on the training corpus, rank them
with domain knowledge, search the test log, score precision/recall — so
the per-table benchmark files stay short and declarative.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Sequence

from repro.baselines.nodeset import NodeSetQuery, mine_nodeset_query
from repro.baselines.ntemp import NtempQuery, mine_ntemp_queries
from repro.core.errors import MiningError
from repro.core.graph import TemporalGraph
from repro.core.miner import MinerConfig, MiningResult, TGMiner
from repro.core.parallel import ParallelMiner, default_workers, run_sharded
from repro.core.pattern import TemporalPattern
from repro.core.ranking import InterestModel, rank_patterns
from repro.query.engine import QueryEngine
from repro.query.evaluation import PrecisionRecall, evaluate_spans, pool_spans
from repro.syscall.collector import TestData, TrainingData

__all__ = [
    "DEFAULT_SPAN_SLACK",
    "interest_model",
    "span_cap",
    "span_cap_for_graphs",
    "mine_behavior",
    "mine_all_behaviors",
    "mine_all_behaviors_from_store",
    "formulate_tgminer_queries",
    "formulate_ntemp_queries",
    "formulate_nodeset_query",
    "formulate_behavior_queries",
    "BehaviorAccuracy",
    "accuracy_for_behavior",
]

#: Span slack converting closed-environment lifetimes to busy-host
#: lifetimes.  Training logs contain only the behavior, while the test
#: host interleaves `background_mix` extra events into every instance
#: window, dilating spans measured on the event-index clock.
DEFAULT_SPAN_SLACK = 2.5


def span_cap(
    train: TrainingData,
    behavior: str,
    slack: float = DEFAULT_SPAN_SLACK,
) -> int:
    """Match-window cap: longest observed lifetime with interleave slack."""
    return span_cap_for_graphs(train.behavior(behavior), slack)


def span_cap_for_graphs(
    graphs: Sequence[TemporalGraph], slack: float = DEFAULT_SPAN_SLACK
) -> int:
    """:func:`span_cap` for a bare positive-graph list (the CLI path).

    The single lifetime-with-slack implementation; :func:`span_cap`
    delegates here.
    """
    spans = [
        graph.span()[1] - graph.span()[0] for graph in graphs if graph.num_edges
    ]
    return int(max(spans, default=0) * slack)


def interest_model(train: TrainingData) -> InterestModel:
    """Fit the Appendix-M interest model over the whole training corpus."""
    return InterestModel.fit(train.all_graphs())


def mine_behavior(
    train: TrainingData,
    behavior: str,
    config: MinerConfig | None = None,
) -> MiningResult:
    """Run TGMiner for one behavior (positives) vs. background (negatives)."""
    miner = TGMiner(config or MinerConfig())
    return miner.mine(train.behavior(behavior), train.background)


# ----------------------------------------------------------------------
# behavior-level fan-out
# ----------------------------------------------------------------------

_FANOUT_STATE: tuple[MinerConfig, list[TemporalGraph]] | None = None


def _init_behavior_worker(
    config: MinerConfig,
    background: list[TemporalGraph],
) -> None:
    # the shared negative set rides in the one-time initializer; each
    # task carries only its own behavior's positive graphs, so a worker
    # never unpickles behaviors it does not mine
    global _FANOUT_STATE
    _FANOUT_STATE = (config, background)


def _mine_behavior_task(
    item: tuple[str, list[TemporalGraph]],
) -> tuple[str, MiningResult]:
    assert _FANOUT_STATE is not None
    name, positives = item
    config, background = _FANOUT_STATE
    return name, TGMiner(config).mine(positives, background)


def _clear_fanout_state() -> None:
    # an inline (workers=1) run sets the module global in this process;
    # drop it so the corpus can be garbage-collected in library use
    global _FANOUT_STATE
    _FANOUT_STATE = None


def mine_all_behaviors(
    train: TrainingData,
    behaviors: Sequence[str] | None = None,
    config: MinerConfig | None = None,
    workers: int | None = 1,
    seed_workers: int = 1,
    start_method: str | None = None,
) -> dict[str, MiningResult]:
    """Mine every behavior of a corpus, fanning runs out across workers.

    The paper mines each behavior independently against the shared
    background set — an embarrassingly parallel outer loop.  With
    ``workers > 1`` each behavior's full mining run executes in its own
    pool process (serial :class:`TGMiner` inside, so per-behavior results
    are trivially byte-identical to a serial loop); ``workers=None`` or
    ``0`` means one worker per CPU, matching the CLI's ``-j 0``.
    Alternatively ``seed_workers > 1`` parallelizes *within* each
    behavior via :class:`~repro.core.parallel.ParallelMiner`'s seed
    sharding, mining behaviors one after another — the two levels do
    NOT compose (pool workers are daemonic and cannot spawn a nested
    pool), so asking for both raises.

    Returns an ordered mapping ``behavior name -> MiningResult`` in the
    requested (or corpus) behavior order.
    """
    names = list(behaviors) if behaviors is not None else list(train.config.behaviors)
    behavior_map = {name: train.behavior(name) for name in names}
    config = config or MinerConfig()
    config.validate()
    workers = default_workers() if workers in (None, 0) else int(workers)
    if seed_workers > 1:
        if workers > 1:
            raise MiningError(
                "workers and seed_workers cannot both exceed 1: pool "
                "workers are daemonic and cannot spawn a nested pool"
            )
        return {
            name: ParallelMiner(
                config, workers=seed_workers, start_method=start_method
            ).mine(behavior_map[name], train.background)
            for name in names
        }
    try:
        results = run_sharded(
            [(name, behavior_map[name]) for name in names],
            _mine_behavior_task,
            workers=workers,
            initializer=_init_behavior_worker,
            initargs=(config, train.background),
            start_method=start_method,
        )
    finally:
        _clear_fanout_state()
    return dict(results)


# ----------------------------------------------------------------------
# behavior-level fan-out from a disk-backed corpus store
# ----------------------------------------------------------------------

_STORE_STATE: tuple[MinerConfig, object, list[TemporalGraph]] | None = None


def _init_store_worker(
    config: MinerConfig, store_path: str, memory_budget_mb: float | None
) -> None:
    # unlike the in-memory fan-out, nothing graph-shaped crosses the
    # process boundary: each worker opens the store file read-only and
    # decodes the shared negative set once
    global _STORE_STATE
    from repro.datasets.store import BACKGROUND_PARTITION, CorpusStore

    store = CorpusStore.open(store_path, memory_budget_mb=memory_budget_mb)
    background = store.load_graphs(BACKGROUND_PARTITION, kind="background")
    _STORE_STATE = (config, store, background)


def _mine_store_task(name: str) -> tuple[str, MiningResult]:
    assert _STORE_STATE is not None
    config, store, background = _STORE_STATE
    positives = store.load_graphs(name, kind="behavior")
    return name, TGMiner(config).mine(positives, background)


def _clear_store_state() -> None:
    global _STORE_STATE
    if _STORE_STATE is not None:
        _STORE_STATE[1].close()
    _STORE_STATE = None


def mine_all_behaviors_from_store(
    store,
    behaviors: Sequence[str] | None = None,
    config: MinerConfig | None = None,
    workers: int | None = 1,
    seed_workers: int = 1,
    start_method: str | None = None,
    memory_budget_mb: float | None = None,
) -> dict[str, MiningResult]:
    """:func:`mine_all_behaviors` streaming from a :class:`CorpusStore`.

    ``store`` is a :class:`~repro.datasets.store.CorpusStore` or a path
    to one.  Only one behavior's positive graphs are decoded at a time
    (plus the shared background set), so peak memory is bounded by the
    largest single partition, not the corpus.  With ``workers > 1``
    tasks carry only behavior *names* — each pool worker attaches to the
    store file read-only and reads its own graphs.  ``seed_workers``
    shards within each behavior via
    :class:`~repro.core.parallel.ParallelMiner` exactly as in the
    in-memory fan-out (the two levels still do not compose).  Results
    are byte-identical to :func:`mine_all_behaviors` over the
    materialized corpus.
    """
    from repro.datasets.store import BACKGROUND_PARTITION, CorpusStore

    opened_here = not isinstance(store, CorpusStore)
    if opened_here:
        store = CorpusStore.open(store, memory_budget_mb=memory_budget_mb)
    try:
        names = list(behaviors) if behaviors is not None else store.behaviors()
        config = config or MinerConfig()
        config.validate()
        workers = default_workers() if workers in (None, 0) else int(workers)
        if seed_workers > 1:
            if workers > 1:
                raise MiningError(
                    "workers and seed_workers cannot both exceed 1: pool "
                    "workers are daemonic and cannot spawn a nested pool"
                )
            background = store.load_graphs(BACKGROUND_PARTITION, kind="background")
            return {
                name: ParallelMiner(
                    config, workers=seed_workers, start_method=start_method
                ).mine(store.load_graphs(name, kind="behavior"), background)
                for name in names
            }
        try:
            results = run_sharded(
                names,
                _mine_store_task,
                workers=workers,
                initializer=_init_store_worker,
                initargs=(config, str(store.path), memory_budget_mb),
                start_method=start_method,
            )
        finally:
            _clear_store_state()
        return dict(results)
    finally:
        if opened_here:
            store.close()


def formulate_tgminer_queries(
    train: TrainingData,
    behavior: str,
    max_edges: int = 6,
    top_k: int = 5,
    min_pos_support: float = 0.7,
    max_seconds: float | None = None,
    model: InterestModel | None = None,
) -> list[TemporalPattern]:
    """Full TGMiner query formulation: mine, rank, take top-k."""
    result = mine_behavior(
        train,
        behavior,
        MinerConfig(
            max_edges=max_edges,
            min_pos_support=min_pos_support,
            max_seconds=max_seconds,
        ),
    )
    model = model or interest_model(train)
    ranked = rank_patterns(result.best, model)
    return [m.pattern for m in ranked[:top_k]]


def formulate_ntemp_queries(
    train: TrainingData,
    behavior: str,
    max_edges: int = 6,
    top_k: int = 5,
    min_pos_support: float = 0.7,
    max_seconds: float | None = None,
    model: InterestModel | None = None,
) -> list[NtempQuery]:
    """Ntemp query formulation (non-temporal miner + same ranking)."""
    model = model or interest_model(train)
    return mine_ntemp_queries(
        train.behavior(behavior),
        train.background,
        interest=model,
        max_edges=max_edges,
        top_k=top_k,
        min_pos_support=min_pos_support,
        max_seconds=max_seconds,
    )


def formulate_nodeset_query(
    train: TrainingData, behavior: str, k: int = 6
) -> NodeSetQuery:
    """NodeSet query formulation (top-k discriminative labels)."""
    return mine_nodeset_query(train.behavior(behavior), train.background, k=k)


def formulate_behavior_queries(
    train: TrainingData,
    behavior: str,
    max_edges: int = 6,
    top_k: int = 5,
    min_pos_support: float = 0.7,
    max_seconds: float | None = None,
    model: InterestModel | None = None,
    slack: float = DEFAULT_SPAN_SLACK,
) -> list["BehaviorQuery"]:
    """Mine one behavior's top-k patterns as registrable serving queries.

    This is the bridge from the paper's offline formulation pipeline to
    the streaming side: each ranked pattern is wrapped with the
    behavior's span cap into a
    :class:`~repro.serving.registry.BehaviorQuery` ready for
    ``DetectionService.register``.
    """
    from repro.serving.registry import BehaviorQuery

    patterns = formulate_tgminer_queries(
        train,
        behavior,
        max_edges=max_edges,
        top_k=top_k,
        min_pos_support=min_pos_support,
        max_seconds=max_seconds,
        model=model,
    )
    cap = span_cap(train, behavior, slack)
    return [
        BehaviorQuery(name=f"{behavior}#{rank}", pattern=pattern, max_span=cap)
        for rank, pattern in enumerate(patterns, start=1)
    ]


@dataclass
class BehaviorAccuracy:
    """Table 2 row: per-method precision/recall for one behavior."""

    behavior: str
    tgminer: PrecisionRecall | None = None
    ntemp: PrecisionRecall | None = None
    nodeset: PrecisionRecall | None = None


def accuracy_for_behavior(
    train: TrainingData,
    test: TestData,
    behavior: str,
    engine: QueryEngine | None = None,
    methods: tuple[str, ...] = ("tgminer", "ntemp", "nodeset"),
    query_size: int = 6,
    top_k: int = 5,
    mining_seconds: float | None = 60.0,
    model: InterestModel | None = None,
) -> BehaviorAccuracy:
    """Evaluate one behavior's queries under the requested methods."""
    engine = engine or QueryEngine(test.graph)
    cap = span_cap(train, behavior)
    row = BehaviorAccuracy(behavior=behavior)
    model = model or interest_model(train)

    if "tgminer" in methods:
        queries = formulate_tgminer_queries(
            train,
            behavior,
            max_edges=query_size,
            top_k=top_k,
            max_seconds=mining_seconds,
            model=model,
        )
        spans = pool_spans(engine.search_temporal(q, cap) for q in queries)
        row.tgminer = evaluate_spans(behavior, spans, test.instances)

    if "ntemp" in methods:
        nqueries = formulate_ntemp_queries(
            train,
            behavior,
            max_edges=query_size,
            top_k=top_k,
            max_seconds=mining_seconds,
            model=model,
        )
        spans = pool_spans(
            engine.search_nontemporal(q.pattern, cap) for q in nqueries
        )
        row.ntemp = evaluate_spans(behavior, spans, test.instances)

    if "nodeset" in methods:
        nodeset = formulate_nodeset_query(train, behavior, k=query_size)
        spans = engine.search_nodeset(nodeset, max_span=cap)
        row.nodeset = evaluate_spans(behavior, spans, test.instances)

    return row
