"""End-to-end pipeline pieces for the paper's experiments (Section 6).

This module wires the full behavior-query formulation pipeline of
Figure 2 — mine discriminative patterns on the training corpus, rank them
with domain knowledge, search the test log, score precision/recall — so
the per-table benchmark files stay short and declarative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.nodeset import NodeSetQuery, mine_nodeset_query
from repro.baselines.ntemp import NtempQuery, mine_ntemp_queries
from repro.core.miner import MinerConfig, MiningResult, TGMiner
from repro.core.pattern import TemporalPattern
from repro.core.ranking import InterestModel, rank_patterns
from repro.query.engine import QueryEngine
from repro.query.evaluation import PrecisionRecall, evaluate_spans, pool_spans
from repro.syscall.collector import TestData, TrainingData

__all__ = [
    "span_cap",
    "mine_behavior",
    "formulate_tgminer_queries",
    "formulate_ntemp_queries",
    "formulate_nodeset_query",
    "BehaviorAccuracy",
    "accuracy_for_behavior",
]

#: Span slack converting closed-environment lifetimes to busy-host
#: lifetimes.  Training logs contain only the behavior, while the test
#: host interleaves `background_mix` extra events into every instance
#: window, dilating spans measured on the event-index clock.
DEFAULT_SPAN_SLACK = 2.5


def span_cap(train: TrainingData, behavior: str, slack: float = DEFAULT_SPAN_SLACK) -> int:
    """Match-window cap: longest observed lifetime with interleave slack."""
    return int(train.max_lifetime(behavior) * slack)


def interest_model(train: TrainingData) -> InterestModel:
    """Fit the Appendix-M interest model over the whole training corpus."""
    return InterestModel.fit(train.all_graphs())


def mine_behavior(
    train: TrainingData,
    behavior: str,
    config: MinerConfig | None = None,
) -> MiningResult:
    """Run TGMiner for one behavior (positives) vs. background (negatives)."""
    miner = TGMiner(config or MinerConfig())
    return miner.mine(train.behavior(behavior), train.background)


def formulate_tgminer_queries(
    train: TrainingData,
    behavior: str,
    max_edges: int = 6,
    top_k: int = 5,
    min_pos_support: float = 0.7,
    max_seconds: float | None = None,
    model: InterestModel | None = None,
) -> list[TemporalPattern]:
    """Full TGMiner query formulation: mine, rank, take top-k."""
    result = mine_behavior(
        train,
        behavior,
        MinerConfig(
            max_edges=max_edges,
            min_pos_support=min_pos_support,
            max_seconds=max_seconds,
        ),
    )
    model = model or interest_model(train)
    ranked = rank_patterns(result.best, model)
    return [m.pattern for m in ranked[:top_k]]


def formulate_ntemp_queries(
    train: TrainingData,
    behavior: str,
    max_edges: int = 6,
    top_k: int = 5,
    min_pos_support: float = 0.7,
    max_seconds: float | None = None,
    model: InterestModel | None = None,
) -> list[NtempQuery]:
    """Ntemp query formulation (non-temporal miner + same ranking)."""
    model = model or interest_model(train)
    return mine_ntemp_queries(
        train.behavior(behavior),
        train.background,
        interest=model,
        max_edges=max_edges,
        top_k=top_k,
        min_pos_support=min_pos_support,
        max_seconds=max_seconds,
    )


def formulate_nodeset_query(
    train: TrainingData, behavior: str, k: int = 6
) -> NodeSetQuery:
    """NodeSet query formulation (top-k discriminative labels)."""
    return mine_nodeset_query(train.behavior(behavior), train.background, k=k)


@dataclass
class BehaviorAccuracy:
    """Table 2 row: per-method precision/recall for one behavior."""

    behavior: str
    tgminer: PrecisionRecall | None = None
    ntemp: PrecisionRecall | None = None
    nodeset: PrecisionRecall | None = None


def accuracy_for_behavior(
    train: TrainingData,
    test: TestData,
    behavior: str,
    engine: QueryEngine | None = None,
    methods: tuple[str, ...] = ("tgminer", "ntemp", "nodeset"),
    query_size: int = 6,
    top_k: int = 5,
    mining_seconds: float | None = 60.0,
    model: InterestModel | None = None,
) -> BehaviorAccuracy:
    """Evaluate one behavior's queries under the requested methods."""
    engine = engine or QueryEngine(test.graph)
    cap = span_cap(train, behavior)
    row = BehaviorAccuracy(behavior=behavior)
    model = model or interest_model(train)

    if "tgminer" in methods:
        queries = formulate_tgminer_queries(
            train,
            behavior,
            max_edges=query_size,
            top_k=top_k,
            max_seconds=mining_seconds,
            model=model,
        )
        spans = pool_spans(engine.search_temporal(q, cap) for q in queries)
        row.tgminer = evaluate_spans(behavior, spans, test.instances)

    if "ntemp" in methods:
        nqueries = formulate_ntemp_queries(
            train,
            behavior,
            max_edges=query_size,
            top_k=top_k,
            max_seconds=mining_seconds,
            model=model,
        )
        spans = pool_spans(
            engine.search_nontemporal(q.pattern, cap) for q in nqueries
        )
        row.ntemp = evaluate_spans(behavior, spans, test.instances)

    if "nodeset" in methods:
        nodeset = formulate_nodeset_query(train, behavior, k=query_size)
        spans = engine.search_nodeset(nodeset, max_span=cap)
        row.nodeset = evaluate_spans(behavior, spans, test.instances)

    return row
