"""Cybersecurity scenario from the paper's introduction (Example 1).

A system expert wants to know whether there is suspicious remote-login
activity over a monitored week: formulate behavior queries for the ssh
family, search the monitoring log, and flag bursts (e.g. "too many
sshd-logins on a Saturday night").

The script demonstrates the full Figure 2 pipeline:

  closed-environment collection -> TGMiner -> ranked queries ->
  search over the monitoring graph -> interval report.

Run with::

    python examples/cybersecurity_hunt.py
"""

from repro.experiments.harness import (
    formulate_tgminer_queries,
    interest_model,
    span_cap,
)
from repro.query.engine import QueryEngine
from repro.query.evaluation import evaluate_spans, pool_spans
from repro.syscall import build_test_data, build_training_data

HUNTED = ("ssh-login", "sshd-login", "scp-download")


def main() -> None:
    print("collecting training data (closed environment) ...")
    train = build_training_data(instances_per_behavior=10, background_graphs=30)
    print("recording one week of monitoring data ...")
    test = build_test_data(instances=60)
    engine = QueryEngine(test.graph)
    model = interest_model(train)

    for behavior in HUNTED:
        queries = formulate_tgminer_queries(
            train, behavior, max_edges=6, max_seconds=30.0, model=model
        )
        cap = span_cap(train, behavior)
        spans = pool_spans(engine.search_temporal(q, cap) for q in queries)
        report = evaluate_spans(behavior, spans, test.instances)
        print(f"\n=== {behavior} ===")
        print(f"query skeleton ({queries[0].num_edges} edges):")
        print(queries[0].describe())
        print(
            f"found {report.correct} activity windows "
            f"({report.discovered}/{report.total_instances} true instances, "
            f"precision {report.precision * 100:.1f}%)"
        )
        # Flag suspicious density: more than 3 logins within a short
        # stretch of the log is worth an analyst's look.
        window = max(1, (test.graph.span()[1]) // 8)
        counts: dict[int, int] = {}
        for start, _end in spans:
            counts[start // window] = counts.get(start // window, 0) + 1
        bursts = {k: v for k, v in counts.items() if v > 3}
        if bursts:
            for bucket, count in sorted(bursts.items()):
                print(
                    f"  suspicious burst: {count} {behavior} events in "
                    f"log window [{bucket * window}, {(bucket + 1) * window})"
                )
        else:
            print("  no suspicious bursts")


if __name__ == "__main__":
    main()
