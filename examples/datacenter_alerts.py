"""Datacenter-monitoring scenario from the paper's introduction (Example 2).

Nodes are low-level performance alerts (cpu-high, io-latency, ...), edges
are "alert A triggered alert B" dependencies with timestamps.  Operators
want high-level diagnoses: do today's alerts look like a *disk failure*
or like an *abnormal database workload*?  TGMiner learns a discriminative
alert-propagation pattern for each condition from labeled incident
histories — no syscall data involved, demonstrating that the miner is
domain-agnostic.

Run with::

    python examples/datacenter_alerts.py
"""

import random

from repro import MinerConfig, TGMiner, TemporalGraph

ALERTS = (
    "alert:cpu-high",
    "alert:mem-pressure",
    "alert:io-latency",
    "alert:disk-errors",
    "alert:raid-degraded",
    "alert:fs-readonly",
    "alert:db-slow-query",
    "alert:db-full-scan",
    "alert:db-lock-wait",
    "alert:net-retrans",
)


def incident(kind: str, rng: random.Random) -> TemporalGraph:
    """One labeled incident: a cascade of alerts over time."""
    g = TemporalGraph(name=kind)
    ids = {label: g.add_node(label) for label in ALERTS}
    t = 0

    def fire(src: str, dst: str) -> None:
        nonlocal t
        g.add_edge(ids[src], ids[dst], t)
        t += 1

    if kind == "disk-failure":
        # disk errors degrade the array, filesystem flips read-only,
        # latency propagates upward into the database tier
        fire("alert:disk-errors", "alert:raid-degraded")
        fire("alert:raid-degraded", "alert:io-latency")
        fire("alert:io-latency", "alert:fs-readonly")
        fire("alert:io-latency", "alert:db-slow-query")
    else:
        # abnormal workload: full scans cause lock waits, CPU and IO
        # pressure follow (same alerts, different propagation order)
        fire("alert:db-full-scan", "alert:db-slow-query")
        fire("alert:db-slow-query", "alert:db-lock-wait")
        fire("alert:db-lock-wait", "alert:cpu-high")
        fire("alert:cpu-high", "alert:io-latency")
    # ambient flapping alerts common to both conditions
    for _ in range(rng.randint(4, 9)):
        src, dst = rng.sample(ALERTS, 2)
        fire(src, dst)
    return g.freeze()


def main() -> None:
    rng = random.Random(7)
    disk = [incident("disk-failure", rng) for _ in range(25)]
    workload = [incident("db-workload", rng) for _ in range(25)]

    miner = TGMiner(MinerConfig(max_edges=4, min_pos_support=0.9))
    for name, positives, negatives in (
        ("disk-failure", disk, workload),
        ("db-workload", workload, disk),
    ):
        result = miner.mine(positives, negatives)
        top = max(result.best, key=lambda m: m.pattern.num_edges)
        print(f"\n=== signature pattern for {name} ===")
        print(top.pattern.describe())
        print(
            f"(score {top.score:.2f}; occurs in {top.pos_freq * 100:.0f}% of "
            f"{name} incidents, {top.neg_freq * 100:.0f}% of the others)"
        )


if __name__ == "__main__":
    main()
