"""Train offline, serve online: the full model-artifact pipeline.

The deployment story the SDK packages: a *training* process mines
behavior queries into one versioned ``BehaviorModel`` bundle; a
*serving* process — any process, any machine — loads the bundle and runs
the queries, in batch over a frozen log or incrementally over a stream.
This example does both in one script and checks they agree.  Run with::

    python examples/model_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import BehaviorModel, MinerConfig, Workspace

BEHAVIORS = ["sshd-login", "gzip-decompress"]


def main() -> None:
    ws = Workspace(seed=7)

    # --- the training process -----------------------------------------
    train = ws.generate(instances_per_behavior=8, background_graphs=24)
    config = MinerConfig(max_edges=5, min_pos_support=0.7)
    model = ws.mine(train, behaviors=BEHAVIORS, config=config, top_k=3)
    bundle = Path(tempfile.mkdtemp()) / "behaviors.tgm"
    model.save(bundle)
    print(
        f"saved {bundle.name}: {len(model.queries())} queries, "
        f"{len(model.labels)} interned labels\n"
    )

    # --- the serving process (fresh load, nothing shared in memory) ----
    served = BehaviorModel.load(bundle)
    test = ws.generate_test(instances=12, seed=11)

    # Batch: search the frozen monitoring graph and score accuracy.
    report = ws.query(served, test, behaviors=BEHAVIORS)
    print("batch accuracy:")
    print(report.describe())

    # Streaming: replay the same log through the detection service.
    service = ws.serve(served)
    detections = ws.replay(service, test.events, batch_size=256)
    print(
        f"\nstreaming: {len(detections)} detections, "
        f"{service.stats.events_per_second:,.0f} events/s"
    )

    # Batch and streaming share one matching core: span-identical.
    for behavior in BEHAVIORS:
        stream_spans = sorted(
            {d.span for d in detections if d.query.startswith(f"{behavior}#")}
        )
        assert stream_spans == list(report.behaviors[behavior].spans)
    print("streaming detections are span-identical to the batch engine")


if __name__ == "__main__":
    main()
