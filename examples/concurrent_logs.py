"""Handling concurrent edges (paper Section 5).

Monitoring data from parallel systems contains events that share a
timestamp; TGMiner's model requires a total edge order.  This example
shows the recommended workflow: measure the concurrency ratio, pick a
sequentialization policy, and check the approximation is harmless for
the patterns you care about.

Run with::

    python examples/concurrent_logs.py
"""

import random

from repro import MinerConfig, TGMiner
from repro.core.concurrent import (
    concurrency_ratio,
    concurrent_blocks,
    sequentialize,
)
from repro.core.graph import TemporalEdge

LABELS = ["proc:etl", "file:input", "file:output", "proc:worker", "file:scratch"]


def concurrent_log(rng: random.Random) -> list[TemporalEdge]:
    """An ETL run whose workers emit concurrent events."""
    edges = [
        TemporalEdge(0, 1, 0),            # etl reads input
        TemporalEdge(0, 3, 1),            # etl spawns worker
        TemporalEdge(3, 4, 2),            # worker scratches...
        TemporalEdge(0, 4, 2),            # ...while etl touches scratch too
        TemporalEdge(3, 2, 3),            # worker writes output
        TemporalEdge(0, 2, 3),            # etl writes output concurrently
    ]
    if rng.random() < 0.5:
        edges.append(TemporalEdge(0, 1, 4))
    return edges


def main() -> None:
    rng = random.Random(0)
    logs = [concurrent_log(rng) for _ in range(20)]
    ratio = sum(concurrency_ratio(log) for log in logs) / len(logs)
    print(f"average concurrency ratio: {ratio * 100:.0f}% of events share timestamps")

    # Policy comparison: the same log under the three tie-breakers.
    for policy in ("stable", "by-endpoint", "random"):
        g = sequentialize(logs[0], LABELS, policy=policy, seed=1)
        order = " -> ".join(f"{g.label(e.src)}>{g.label(e.dst)}" for e in g.edges[:4])
        print(f"{policy:12s}: {order} ...")

    # Block view: a conservative containment pre-test that needs no
    # sequentialization at all.
    big = concurrent_blocks(logs[0], LABELS)
    small = concurrent_blocks([TemporalEdge(0, 1, 0), TemporalEdge(3, 2, 9)], LABELS)
    print(f"block-level containment possible: {big.may_contain(small)}")

    # Mining proceeds on sequentialized graphs unchanged.
    graphs = [sequentialize(log, LABELS, policy="by-endpoint") for log in logs]
    result = TGMiner(MinerConfig(max_edges=3, min_pos_support=0.8)).mine(graphs, [])
    print(f"\nmined {len(result.best)} co-optimal patterns; one of them:")
    print(result.best[0].pattern.describe())


if __name__ == "__main__":
    main()
