"""Quickstart: mine a discriminative temporal pattern in ~30 lines.

Builds a tiny training corpus with the syscall simulator, runs TGMiner
on one behavior against the background, and prints the top behavior
query.  Run with::

    python examples/quickstart.py
"""

from repro import MinerConfig, TGMiner
from repro.core.ranking import InterestModel, rank_patterns
from repro.syscall import build_training_data


def main() -> None:
    # 1. Collect training data: 10 closed-environment runs per behavior
    #    plus 30 behavior-free background graphs (paper Section 6.1).
    train = build_training_data(instances_per_behavior=10, background_graphs=30)

    # 2. Mine the most discriminative temporal patterns for sshd-login.
    positives = train.behavior("sshd-login")
    result = TGMiner(MinerConfig(max_edges=6, min_pos_support=0.7)).mine(
        positives, train.background
    )
    print(
        f"explored {result.stats.patterns_explored} patterns in "
        f"{result.stats.elapsed_seconds:.2f}s; best score {result.best_score:.2f}; "
        f"{len(result.best)} co-optimal patterns"
    )

    # 3. Rank co-optimal patterns by domain knowledge (Appendix M) and
    #    take the top one as the behavior query skeleton.
    model = InterestModel.fit(train.all_graphs())
    top = rank_patterns(result.best, model)[0]
    print("\nTop behavior query for sshd-login:")
    print(top.pattern.describe())


if __name__ == "__main__":
    main()
