"""Quickstart: mine a behavior model with the SDK in ~30 lines.

Uses the :class:`repro.api.Workspace` facade — the same entry point the
CLI wraps — to build a tiny training corpus, mine one behavior into a
versioned :class:`repro.api.BehaviorModel`, and print the top behavior
query.  Run with::

    python examples/quickstart.py
"""

from repro import MinerConfig, Workspace


def main() -> None:
    ws = Workspace(seed=7)

    # 1. Collect training data: 10 closed-environment runs per behavior
    #    plus 30 behavior-free background graphs (paper Section 6.1).
    train = ws.generate(instances_per_behavior=10, background_graphs=30)

    # 2. Mine the most discriminative temporal patterns for sshd-login
    #    into a model artifact (ranked queries + span cap + provenance).
    config = MinerConfig(max_edges=6, min_pos_support=0.7)
    model = ws.mine(train, behaviors=["sshd-login"], config=config, top_k=3)
    record = model.record("sshd-login")
    print(
        f"explored {record.patterns_explored} patterns in "
        f"{record.elapsed_seconds:.2f}s; best score {record.best_score:.2f}; "
        f"{record.co_optimal} co-optimal patterns"
    )

    # 3. The top-ranked pattern (Appendix-M interest ranking) is the
    #    behavior query skeleton; model.save("sshd.tgm") would persist
    #    the whole bundle for `repro detect --model sshd.tgm`.
    print("\nTop behavior query for sshd-login:")
    print(record.patterns[0].pattern.describe())


if __name__ == "__main__":
    main()
