"""Ablations for the design choices DESIGN.md calls out.

1. Appendix-J subsequence-test pruning techniques on/off (label test,
   local-information match, prefix pruning) — measured on a batch of
   pattern-vs-pattern temporal subgraph tests.
2. Residual-set integer compression (Lemma 6) vs. linear scans — via the
   LinearScan miner variant.
3. Score-function choice — the paper observes the common score functions
   deliver a common set of top patterns.
4. Graph-index candidate prefilter on/off — the signature-containment
   stage in front of the miner's subgraph tests must leave the mined
   pattern set byte-identical while skipping most tester invocations.
"""

import random
import time

from repro.core.miner import MinerConfig, TGMiner
from repro.core.pattern import TemporalPattern
from repro.core.subgraph import SequenceSubgraphTester
from repro.experiments.harness import mine_behavior

from benchmarks.bench_common import MINING_SECONDS, emit, once


def _random_graph(rng, n_nodes, n_edges, alphabet="ABCD"):
    from repro.core.graph import TemporalGraph

    g = TemporalGraph()
    for _ in range(n_nodes):
        g.add_node(rng.choice(alphabet))
    for t in range(n_edges):
        u = rng.randrange(n_nodes)
        v = (u + 1 + rng.randrange(n_nodes - 1)) % n_nodes
        g.add_edge(u, v, t)
    return g.freeze()


def _pattern_corpus(seed=11, count=60):
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        big_graph = _random_graph(rng, 6, 12)
        try:
            big = TemporalPattern.from_graph(big_graph)
        except Exception:
            continue
        small_graph = _random_graph(rng, 4, 5)
        try:
            small = TemporalPattern.from_graph(small_graph)
        except Exception:
            continue
        pairs.append((small, big))
    return pairs


def test_ablation_subsequence_pruning(benchmark):
    pairs = _pattern_corpus()

    def run():
        timings = {}
        configs = {
            "all-prunings": {},
            "no-label-test": {"use_label_test": False},
            "no-local-info": {"use_local_info": False},
            "no-prefix": {"use_prefix_pruning": False},
            "none": {
                "use_label_test": False,
                "use_local_info": False,
                "use_prefix_pruning": False,
            },
        }
        reference = None
        for name, kwargs in configs.items():
            tester = SequenceSubgraphTester(**kwargs)
            started = time.perf_counter()
            outcome = [tester.contains(s, b) for s, b in pairs for _ in range(30)]
            timings[name] = time.perf_counter() - started
            if reference is None:
                reference = outcome
            assert outcome == reference, f"{name} changed results"
        return timings

    timings = once(benchmark, run)
    emit("\n=== Ablation: Appendix-J subsequence-test prunings ===")
    for name, seconds in timings.items():
        emit(f"{name:14s} {seconds:8.3f}s")


def test_ablation_residual_compression(benchmark, train):
    def run():
        timings = {}
        for mode in ("integer", "linear"):
            config = MinerConfig(
                max_edges=4,
                min_pos_support=0.7,
                residual_equivalence=mode,
                max_seconds=MINING_SECONDS,
            )
            started = time.perf_counter()
            result = mine_behavior(train, "ftp-download", config)
            timings[mode] = (time.perf_counter() - started, result.best_score)
        return timings

    timings = once(benchmark, run)
    emit("\n=== Ablation: residual-set compression (Lemma 6) vs linear scan ===")
    for mode, (seconds, _score) in timings.items():
        emit(f"{mode:8s} {seconds:8.3f}s")
    assert timings["integer"][1] == timings["linear"][1]


def test_ablation_score_functions(benchmark, train):
    def run():
        tops = {}
        for score in ("log-ratio", "g-test", "info-gain"):
            result = TGMiner(
                MinerConfig(
                    max_edges=3,
                    min_pos_support=0.7,
                    score=score,
                    max_seconds=MINING_SECONDS,
                )
            ).mine(train.behavior("gzip-decompress"), train.background)
            tops[score] = {m.pattern.key() for m in result.best}
        return tops

    tops = once(benchmark, run)
    emit("\n=== Ablation: score functions deliver a common top pattern set ===")
    common = set.intersection(*tops.values())
    for score, keys in tops.items():
        emit(f"{score:10s} {len(keys):4d} co-optimal patterns")
    emit(f"{'common':10s} {len(common):4d}")
    # paper Section 6.1: the score functions deliver a common set of
    # discriminative patterns
    assert common


def test_ablation_index_prefilter(benchmark, train):
    def run():
        rows = {}
        for tester in ("sequence", "vf2"):
            for indexed in (False, True):
                config = MinerConfig(
                    max_edges=5,
                    min_pos_support=0.7,
                    subgraph_test=tester,
                    index_prefilter=indexed,
                    max_seconds=MINING_SECONDS,
                )
                started = time.perf_counter()
                result = mine_behavior(train, "apt-get-update", config)
                rows[(tester, indexed)] = (time.perf_counter() - started, result)
        return rows

    rows = once(benchmark, run)
    emit("\n=== Ablation: graph-index candidate prefilter ===")
    emit(
        f"{'tester':10s} {'index':6s} {'seconds':>8s} {'sub tests':>10s} "
        f"{'by sig':>10s} {'searched':>10s}"
    )
    for (tester, indexed), (seconds, result) in rows.items():
        stats = result.stats
        searched = stats.subgraph_tests - stats.index_prefilter_skips
        flag = " (timed out)" if stats.timed_out else ""
        emit(
            f"{tester:10s} {'on' if indexed else 'off':6s} {seconds:8.3f} "
            f"{stats.subgraph_tests:10d} {stats.index_prefilter_skips:10d} "
            f"{searched:10d}{flag}"
        )
    for tester in ("sequence", "vf2"):
        base = rows[(tester, False)][1]
        filt = rows[(tester, True)][1]
        if base.stats.timed_out or filt.stats.timed_out:
            # A capped run stops mid-search, so the two runs explored
            # different pattern sets; byte-identity is only a claim about
            # completed searches.
            continue
        # filter soundness: identical mined pattern sets and scores
        assert {m.pattern.key() for m in base.best} == {
            m.pattern.key() for m in filt.best
        }
        assert base.best_score == filt.best_score
        # the prefilter must answer most candidate tests by signature
        # alone, reducing full mapping searches accordingly
        searched = filt.stats.subgraph_tests - filt.stats.index_prefilter_skips
        assert searched <= base.stats.subgraph_tests
        if base.stats.subgraph_tests >= 100:
            assert filt.stats.index_prefilter_skips > 0
