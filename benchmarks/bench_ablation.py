"""Ablations for the design choices DESIGN.md calls out.

1. Appendix-J subsequence-test pruning techniques on/off (label test,
   local-information match, prefix pruning) — measured on a batch of
   pattern-vs-pattern temporal subgraph tests.
2. Residual-set integer compression (Lemma 6) vs. linear scans — via the
   LinearScan miner variant.
3. Score-function choice — the paper observes the common score functions
   deliver a common set of top patterns.
4. Graph-index candidate prefilter on/off — the signature-containment
   stage in front of the miner's subgraph tests must leave the mined
   pattern set byte-identical while skipping most tester invocations.
5. Serial vs parallel sharded mining — seed-sharded ``ParallelMiner``
   and behavior-level ``mine_all_behaviors`` fan-out must keep pattern
   sets byte-identical at every worker count while scaling wall-clock on
   multi-core hosts; results land in ``BENCH_parallel.json``.
"""

import os
import random
import time

from repro.core.miner import MinerConfig, TGMiner
from repro.core.parallel import ParallelMiner, mining_fingerprint
from repro.core.pattern import TemporalPattern
from repro.core.subgraph import SequenceSubgraphTester
from repro.experiments.harness import mine_all_behaviors, mine_behavior

from benchmarks.bench_common import (
    FAN_MAX_EDGES,
    MIN_PARALLEL_SPEEDUP,
    MINING_SECONDS,
    PARALLEL_WORKERS,
    SEED_MAX_EDGES,
    emit,
    once,
    write_json,
)


def _random_graph(rng, n_nodes, n_edges, alphabet="ABCD"):
    from repro.core.graph import TemporalGraph

    g = TemporalGraph()
    for _ in range(n_nodes):
        g.add_node(rng.choice(alphabet))
    for t in range(n_edges):
        u = rng.randrange(n_nodes)
        v = (u + 1 + rng.randrange(n_nodes - 1)) % n_nodes
        g.add_edge(u, v, t)
    return g.freeze()


def _pattern_corpus(seed=11, count=60):
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        big_graph = _random_graph(rng, 6, 12)
        try:
            big = TemporalPattern.from_graph(big_graph)
        except Exception:
            continue
        small_graph = _random_graph(rng, 4, 5)
        try:
            small = TemporalPattern.from_graph(small_graph)
        except Exception:
            continue
        pairs.append((small, big))
    return pairs


def test_ablation_subsequence_pruning(benchmark):
    pairs = _pattern_corpus()

    def run():
        timings = {}
        configs = {
            "all-prunings": {},
            "no-label-test": {"use_label_test": False},
            "no-local-info": {"use_local_info": False},
            "no-prefix": {"use_prefix_pruning": False},
            "none": {
                "use_label_test": False,
                "use_local_info": False,
                "use_prefix_pruning": False,
            },
        }
        reference = None
        for name, kwargs in configs.items():
            tester = SequenceSubgraphTester(**kwargs)
            started = time.perf_counter()
            outcome = [tester.contains(s, b) for s, b in pairs for _ in range(30)]
            timings[name] = time.perf_counter() - started
            if reference is None:
                reference = outcome
            assert outcome == reference, f"{name} changed results"
        return timings

    timings = once(benchmark, run)
    emit("\n=== Ablation: Appendix-J subsequence-test prunings ===")
    for name, seconds in timings.items():
        emit(f"{name:14s} {seconds:8.3f}s")


def test_ablation_residual_compression(benchmark, train):
    def run():
        timings = {}
        for mode in ("integer", "linear"):
            config = MinerConfig(
                max_edges=4,
                min_pos_support=0.7,
                residual_equivalence=mode,
                max_seconds=MINING_SECONDS,
            )
            started = time.perf_counter()
            result = mine_behavior(train, "ftp-download", config)
            timings[mode] = (time.perf_counter() - started, result.best_score)
        return timings

    timings = once(benchmark, run)
    emit("\n=== Ablation: residual-set compression (Lemma 6) vs linear scan ===")
    for mode, (seconds, _score) in timings.items():
        emit(f"{mode:8s} {seconds:8.3f}s")
    assert timings["integer"][1] == timings["linear"][1]


def test_ablation_score_functions(benchmark, train):
    def run():
        tops = {}
        for score in ("log-ratio", "g-test", "info-gain"):
            result = TGMiner(
                MinerConfig(
                    max_edges=3,
                    min_pos_support=0.7,
                    score=score,
                    max_seconds=MINING_SECONDS,
                )
            ).mine(train.behavior("gzip-decompress"), train.background)
            tops[score] = {m.pattern.key() for m in result.best}
        return tops

    tops = once(benchmark, run)
    emit("\n=== Ablation: score functions deliver a common top pattern set ===")
    common = set.intersection(*tops.values())
    for score, keys in tops.items():
        emit(f"{score:10s} {len(keys):4d} co-optimal patterns")
    emit(f"{'common':10s} {len(common):4d}")
    # paper Section 6.1: the score functions deliver a common set of
    # discriminative patterns
    assert common


def test_ablation_index_prefilter(benchmark, train):
    def run():
        rows = {}
        for tester in ("sequence", "vf2"):
            for indexed in (False, True):
                config = MinerConfig(
                    max_edges=5,
                    min_pos_support=0.7,
                    subgraph_test=tester,
                    index_prefilter=indexed,
                    max_seconds=MINING_SECONDS,
                )
                started = time.perf_counter()
                result = mine_behavior(train, "apt-get-update", config)
                rows[(tester, indexed)] = (time.perf_counter() - started, result)
        return rows

    rows = once(benchmark, run)
    emit("\n=== Ablation: graph-index candidate prefilter ===")
    emit(
        f"{'tester':10s} {'index':6s} {'seconds':>8s} {'sub tests':>10s} "
        f"{'by sig':>10s} {'searched':>10s}"
    )
    for (tester, indexed), (seconds, result) in rows.items():
        stats = result.stats
        searched = stats.subgraph_tests - stats.index_prefilter_skips
        flag = " (timed out)" if stats.timed_out else ""
        emit(
            f"{tester:10s} {'on' if indexed else 'off':6s} {seconds:8.3f} "
            f"{stats.subgraph_tests:10d} {stats.index_prefilter_skips:10d} "
            f"{searched:10d}{flag}"
        )
    for tester in ("sequence", "vf2"):
        base = rows[(tester, False)][1]
        filt = rows[(tester, True)][1]
        if base.stats.timed_out or filt.stats.timed_out:
            # A capped run stops mid-search, so the two runs explored
            # different pattern sets; byte-identity is only a claim about
            # completed searches.
            continue
        # filter soundness: identical mined pattern sets and scores
        assert {m.pattern.key() for m in base.best} == {
            m.pattern.key() for m in filt.best
        }
        assert base.best_score == filt.best_score
        # the prefilter must answer most candidate tests by signature
        # alone, reducing full mapping searches accordingly
        searched = filt.stats.subgraph_tests - filt.stats.index_prefilter_skips
        assert searched <= base.stats.subgraph_tests
        if base.stats.subgraph_tests >= 100:
            assert filt.stats.index_prefilter_skips > 0


def test_ablation_parallel_scaling(benchmark, train):
    """Serial vs sharded mining: identical patterns, scaling wall-clock.

    Two parallelism levels are swept: seed-sharded ``ParallelMiner`` on
    the heaviest single behavior, and behavior-level fan-out over a
    six-behavior slate.  Byte-identity with the serial miner is asserted
    unconditionally (unless a run hit the wall-clock cap); the speedup
    floor is asserted only when the host has as many CPUs as the largest
    worker count — wall-clock scaling on a 1-core CI box would measure
    the scheduler, not the sharding.
    """
    # the deepest single-behavior search (largest seed-shard pool) and a
    # full-corpus slate: both heavy enough at the default scale that pool
    # startup is noise against the mining work being distributed
    seed_behavior = "sshd-login"
    fan_behaviors = tuple(train.config.behaviors)
    max_workers = max(PARALLEL_WORKERS)
    seed_config = MinerConfig(
        max_edges=SEED_MAX_EDGES, min_pos_support=0.7, max_seconds=MINING_SECONDS
    )
    fan_config = MinerConfig(
        max_edges=FAN_MAX_EDGES, min_pos_support=0.7, max_seconds=MINING_SECONDS
    )

    def run():
        seed_rows = {}
        started = time.perf_counter()
        serial = mine_behavior(train, seed_behavior, seed_config)
        seed_rows["serial"] = (time.perf_counter() - started, serial)
        for workers in PARALLEL_WORKERS:
            miner = ParallelMiner(seed_config, workers=workers)
            started = time.perf_counter()
            result = miner.mine(train.behavior(seed_behavior), train.background)
            seed_rows[workers] = (time.perf_counter() - started, result)

        fan_rows = {}
        for workers in (1, max_workers):
            started = time.perf_counter()
            results = mine_all_behaviors(
                train, fan_behaviors, fan_config, workers=workers
            )
            fan_rows[workers] = (time.perf_counter() - started, results)
        return seed_rows, fan_rows

    seed_rows, fan_rows = once(benchmark, run)

    emit("\n=== Ablation: serial vs parallel sharded mining ===")
    emit(f"{'level':10s} {'run':>10s} {'seconds':>8s} {'patterns':>9s}")
    serial_seconds, serial_result = seed_rows["serial"]
    for label, (seconds, result) in seed_rows.items():
        emit(
            f"{'seed':10s} {str(label):>10s} {seconds:8.3f} "
            f"{result.stats.patterns_explored:9d}"
            + (" (timed out)" if result.stats.timed_out else "")
        )
    for workers, (seconds, results) in fan_rows.items():
        explored = sum(r.stats.patterns_explored for r in results.values())
        timed_out = any(r.stats.timed_out for r in results.values())
        emit(
            f"{'behavior':10s} {workers:>10d} {seconds:8.3f} {explored:9d}"
            + (" (timed out)" if timed_out else "")
        )

    # soundness: sharded pattern sets are byte-identical to serial
    # (timed-out runs stopped mid-search and carry no identity claim)
    mismatches = []
    comparisons = 0
    serial_fp = mining_fingerprint(serial_result)
    for workers in PARALLEL_WORKERS:
        _seconds, result = seed_rows[workers]
        if serial_result.stats.timed_out or result.stats.timed_out:
            continue
        comparisons += 1
        if mining_fingerprint(result) != serial_fp:
            mismatches.append(f"seed workers={workers}")
    fan_serial = fan_rows[1][1]
    fan_parallel = fan_rows[max_workers][1]
    for name in fan_behaviors:
        if fan_serial[name].stats.timed_out or fan_parallel[name].stats.timed_out:
            continue
        comparisons += 1
        if mining_fingerprint(fan_serial[name]) != mining_fingerprint(
            fan_parallel[name]
        ):
            mismatches.append(f"fan-out {name}")
    identical = not mismatches
    # every run timing out would make the identity claim vacuous; the
    # smoke job exists to enforce it, so demand at least one comparison
    assert comparisons > 0, "all runs hit the wall-clock cap; raise BENCH knobs"

    cores = os.cpu_count() or 1
    seed_speedup = serial_seconds / max(seed_rows[max_workers][0], 1e-9)
    fan_speedup = fan_rows[1][0] / max(fan_rows[max_workers][0], 1e-9)
    emit(
        f"speedup at {max_workers} workers on {cores} cores: "
        f"seed-sharded {seed_speedup:.2f}x, behavior fan-out {fan_speedup:.2f}x"
    )
    write_json(
        "BENCH_parallel.json",
        {
            "cpu_count": cores,
            "worker_counts": list(PARALLEL_WORKERS),
            "seed_behavior": seed_behavior,
            "seed_seconds": {
                str(label): seconds for label, (seconds, _r) in seed_rows.items()
            },
            "fan_behaviors": list(fan_behaviors),
            "fan_seconds": {
                str(workers): seconds for workers, (seconds, _r) in fan_rows.items()
            },
            "seed_speedup": seed_speedup,
            "fan_speedup": fan_speedup,
            "min_speedup_required": MIN_PARALLEL_SPEEDUP,
            "speedup_enforced": cores >= max_workers,
            "identical": identical,
        },
    )
    assert identical, f"parallel output differs from serial: {mismatches}"
    if cores >= max_workers and max_workers > 1:
        assert (
            max(seed_speedup, fan_speedup) > MIN_PARALLEL_SPEEDUP
        ), f"parallel mining regressed: {seed_speedup:.2f}x / {fan_speedup:.2f}x"
