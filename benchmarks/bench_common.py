"""Shared fixtures and helpers for the experiment benchmarks.

Every benchmark regenerates one table or figure of the paper's Section 6
at laptop scale (the paper's absolute numbers came from a C++
implementation on full-size logs; the *shape* — who wins, by what factor,
where crossovers fall — is what these benchmarks reproduce).

Datasets are built once per session and shared.  Tables are printed to
the real stdout (bypassing capture) so `pytest benchmarks/
--benchmark-only | tee bench_output.txt` records them alongside the
timing table.

This module lives beside the benchmarks (not in ``conftest.py``) so it
never shadows the test suite's top-level ``conftest``; the package-scoped
``benchmarks/conftest.py`` re-exports the fixtures for pytest discovery.
Scale knobs honor ``BENCH_*`` environment variables so CI can smoke-run a
benchmark on a tiny synthetic input.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

from repro.experiments.harness import interest_model
from repro.query.engine import QueryEngine
from repro.syscall import build_test_data, build_training_data

#: Full-scale defaults of the core scale knobs — the scale the
#: shape/threshold assertions in the figure benchmarks were calibrated
#: at, and the floor :func:`scale_guard` checks against.  The env-knob
#: defaults below derive from this dict so the two can never drift.
FULL_SCALE = {
    "train_instances": 8,
    "background_graphs": 24,
    "test_instances": 48,
    "mining_seconds": 45.0,
}

#: Scale knobs: instances per behavior / background graphs / test instances.
TRAIN_INSTANCES = int(
    os.environ.get("BENCH_TRAIN_INSTANCES", FULL_SCALE["train_instances"])
)
BACKGROUND_GRAPHS = int(
    os.environ.get("BENCH_BACKGROUND_GRAPHS", FULL_SCALE["background_graphs"])
)
TEST_INSTANCES = int(
    os.environ.get("BENCH_TEST_INSTANCES", FULL_SCALE["test_instances"])
)
#: Wall-clock cap per mining run (a run hitting the cap is reported as
#: ">= cap", mirroring the paper's "SupPrune cannot finish within 2 days").
MINING_SECONDS = float(
    os.environ.get("BENCH_MINING_SECONDS", FULL_SCALE["mining_seconds"])
)
#: Worker counts swept by the parallel scaling ablation.
PARALLEL_WORKERS = tuple(
    int(w) for w in os.environ.get("BENCH_PARALLEL_WORKERS", "1,2,4").split(",")
)
#: Pattern-depth knobs for the scaling ablation.  CI's smoke run lowers
#: them so the tiny corpus mines to completion well inside the cap —
#: a timed-out run is exempt from the byte-identity assertion, and the
#: smoke job exists precisely to enforce that assertion.
SEED_MAX_EDGES = int(os.environ.get("BENCH_SEED_MAX_EDGES", 6))
FAN_MAX_EDGES = int(os.environ.get("BENCH_FAN_MAX_EDGES", 5))
#: Speedup the scaling ablation must show at its largest worker count —
#: only enforced when the host actually has that many CPUs (wall-clock
#: speedup on an oversubscribed box would measure the scheduler, not us).
MIN_PARALLEL_SPEEDUP = float(os.environ.get("BENCH_MIN_PARALLEL_SPEEDUP", 1.5))
#: Events per ingest batch in the serving ablation's stream replay.
SERVING_BATCH = int(os.environ.get("BENCH_SERVING_BATCH", 200))
#: Measurement repeats for the serving ablation; the best (minimum) time
#: per mode is reported, denoising the millisecond-scale smoke runs the
#: perf-trend gate compares across CI machines.
SERVING_REPEATS = int(os.environ.get("BENCH_SERVING_REPEATS", 5))
#: Speedup incremental ingestion must show over rebuild-per-batch in the
#: serving ablation (0 disables the floor; the smoke run keeps it on —
#: the advantage is architectural, not core-count-dependent).
MIN_STREAMING_SPEEDUP = float(os.environ.get("BENCH_MIN_STREAMING_SPEEDUP", 1.2))
#: Simulated tenants the fleet benchmark's load generator replays (the
#: multi-tenant sweep; nightly raises it to 100).
FLEET_TENANTS = int(os.environ.get("BENCH_FLEET_TENANTS", 32))
#: Behavior instances in each tenant's synthesized busy-host log.
FLEET_INSTANCES = int(os.environ.get("BENCH_FLEET_INSTANCES", 2))
#: Shard counts the fleet benchmark sweeps.
FLEET_SHARDS = tuple(
    int(s) for s in os.environ.get("BENCH_FLEET_SHARDS", "1,2,4").split(",")
)
#: Events per routed batch in the fleet replay.
FLEET_BATCH = int(os.environ.get("BENCH_FLEET_BATCH", 256))
#: Measurement repeats per shard count (best-of-N, like the serving bench).
FLEET_REPEATS = int(os.environ.get("BENCH_FLEET_REPEATS", 3))
#: Bounded per-shard queue depth for the fleet's process runner.
FLEET_QUEUE_DEPTH = int(os.environ.get("BENCH_FLEET_QUEUE_DEPTH", 8))
#: Aggregate-throughput speedup the largest shard count must show over one
#: shard — only enforced with enough CPUs and >= 32 tenants (below that
#: the sweep measures routing overhead, not parallelism).
MIN_FLEET_SPEEDUP = float(os.environ.get("BENCH_MIN_FLEET_SPEEDUP", 1.5))
#: Snapshot cadence (batches) for the recovery benchmark's durable run.
RECOVERY_CHECKPOINT_EVERY = int(os.environ.get("BENCH_RECOVERY_CHECKPOINT_EVERY", 32))
#: Measurement repeats for the recovery benchmark (best-of-N per mode).
RECOVERY_REPEATS = int(os.environ.get("BENCH_RECOVERY_REPEATS", 3))
#: Ceiling on WAL+snapshot overhead as a fraction of plain ingest wall
#: time (0.10 = 10%) — only enforced when the plain run is long enough
#: to measure the ratio meaningfully (0 disables the ceiling).
MAX_CHECKPOINT_OVERHEAD = float(os.environ.get("BENCH_MAX_CHECKPOINT_OVERHEAD", 0.10))
#: Replication factor for the corpus-store benchmark's on-disk corpus:
#: the *behavior* partitions are replicated this many times over one
#: shared background set before the corpus is written to the store, so
#: the materialized training corpus dwarfs the streaming reader's
#: working set (background plus one partition) at any moment.
STORE_REPLICAS = int(os.environ.get("BENCH_STORE_REPLICAS", 4))
#: Days of monitor log written to the benchmark store: the one-day test
#: stream is replayed this many times at daily offsets, so the stored
#: event log (and the in-memory graph the batch engine materializes
#: from it) grows linearly while the windowed scan's residency stays
#: O(window width).
STORE_DAYS = int(os.environ.get("BENCH_STORE_DAYS", 4))
#: Pattern-depth cap for the corpus-store mining comparison (the store
#: ablation measures I/O and residency, not search depth).
STORE_MAX_EDGES = int(os.environ.get("BENCH_STORE_MAX_EDGES", 3))
#: Edges per page blob in the benchmark store (small enough that the
#: windowed scan exercises multi-page assembly at smoke scale).
STORE_PAGE_EDGES = int(os.environ.get("BENCH_STORE_PAGE_EDGES", 1024))
#: In-memory peak-RSS floor (MB) under which the residency bound is
#: reported but not enforced: below it both pipelines' peaks are
#: dominated by the miner's exploration working set (tens of MB,
#: identical on both paths), not by corpus residency — only past the
#: floor does the 4x budget measure the store (0 disables enforcement).
STORE_RSS_FLOOR_MB = float(os.environ.get("BENCH_STORE_RSS_FLOOR_MB", 256.0))
#: In-memory mining-seconds floor under which the store-vs-memory
#: efficiency ratio is reported but not gated (millisecond smoke runs
#: measure fixed costs, not the decode overhead).
STORE_EFFICIENCY_FLOOR = float(os.environ.get("BENCH_STORE_EFFICIENCY_FLOOR", 1.0))
#: Where BENCH_*.json result files land (CI uploads them as artifacts).
JSON_DIR = Path(os.environ.get("BENCH_JSON_DIR", "."))


def meets_scale(
    train_instances: int = 0,
    background_graphs: int = 0,
    test_instances: int = 0,
    mining_seconds: float = 0.0,
) -> bool:
    """Whether the current ``BENCH_*`` scale reaches the given floors."""
    return (
        TRAIN_INSTANCES >= train_instances
        and BACKGROUND_GRAPHS >= background_graphs
        and TEST_INSTANCES >= test_instances
        and MINING_SECONDS >= mining_seconds
    )


def scale_guard(what: str, **floors) -> bool:
    """Gate a scale-sensitive assertion on the benchmark scale floor.

    Returns ``True`` when the assertion should run.  Below the floor it
    emits a loud note and returns ``False`` — the benchmark body still
    executed, so smoke CI exercises the code path end to end without
    tripping thresholds that only hold at full scale.  With no explicit
    floors the full :data:`FULL_SCALE` is required; explicit floors gate
    only the dimensions they name.
    """
    requirements = floors or dict(FULL_SCALE)
    if meets_scale(**requirements):
        return True
    emit(
        f"[scale floor] skipping assertion {what!r}: needs {requirements}, "
        f"running at train={TRAIN_INSTANCES} background={BACKGROUND_GRAPHS} "
        f"test={TEST_INSTANCES} mining_cap={MINING_SECONDS}"
    )
    return False


def emit(text: str) -> None:
    """Print experiment tables past pytest's capture."""
    sys.__stdout__.write(text + "\n")
    sys.__stdout__.flush()


def write_json(name: str, payload: dict) -> Path:
    """Write a benchmark result file under ``BENCH_JSON_DIR``."""
    JSON_DIR.mkdir(parents=True, exist_ok=True)
    path = JSON_DIR / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    emit(f"wrote {path}")
    return path


def once(benchmark, fn, *args, **kwargs):
    """Run a heavyweight experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def train():
    return build_training_data(
        instances_per_behavior=TRAIN_INSTANCES, background_graphs=BACKGROUND_GRAPHS
    )


@pytest.fixture(scope="session")
def test_data():
    return build_test_data(instances=TEST_INSTANCES)


@pytest.fixture(scope="session")
def engine(test_data):
    return QueryEngine(test_data.graph)


@pytest.fixture(scope="session")
def model(train):
    return interest_model(train)
