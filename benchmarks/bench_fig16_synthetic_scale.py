"""Figure 16 (Appendix N): scalability on replicated synthetic datasets.

SYN-k replicates every training graph k times; pattern frequencies are
invariant, so response time should scale roughly linearly in k.
"""

import time

from repro.core.miner import MinerConfig
from repro.datasets.synthetic import replicate_training_data
from repro.experiments.harness import mine_behavior

from benchmarks.bench_common import MINING_SECONDS, emit, once

FACTORS = (1, 2, 4)
BEHAVIOR = "ftp-download"


def test_fig16_synthetic_scalability(benchmark, train):
    def run():
        table = {}
        for factor in FACTORS:
            syn = replicate_training_data(train, factor)
            started = time.perf_counter()
            result = mine_behavior(
                syn,
                BEHAVIOR,
                MinerConfig(
                    max_edges=4,
                    min_pos_support=0.7,
                    max_seconds=MINING_SECONDS,
                ),
            )
            table[factor] = (time.perf_counter() - started, result.best_score)
        return table

    table = once(benchmark, run)
    emit("\n=== Figure 16: response time on SYN-k replicated datasets ===")
    emit(f"{'factor':>6s} {'seconds':>9s} {'sec/factor':>11s}")
    for factor in FACTORS:
        seconds, _score = table[factor]
        emit(f"{factor:6d} {seconds:9.3f} {seconds / factor:11.3f}")
    # replication must not change the mining result...
    scores = {round(score, 9) for _seconds, score in table.values()}
    assert len(scores) == 1
    # ...and cost grows with the data volume
    assert table[FACTORS[-1]][0] >= table[1][0]
