"""Fleet sweep: multi-tenant detection throughput at 1/2/4 shards.

A load generator synthesizes :data:`FLEET_TENANTS` tagged busy-host
streams, round-robin interleaves them into one mixed stream (consecutive
batches mix tenants — the router's workload), and replays it through a
``runner="process"`` :class:`~repro.serving.DetectionFleet` at each
shard count.  Reported per shard count: aggregate events/sec over router
wall-clock and p95/p99 per-batch ingest latency from the merged shard
reservoirs.

Soundness bar, asserted on every run: fleet detections at every shard
count are **exactly the union of per-tenant serial**
:class:`~repro.serving.DetectionService` detections.  The speedup floor
(``BENCH_MIN_FLEET_SPEEDUP`` at the largest shard count) is enforced
only when the host has that many CPUs and the tenant count reaches 32 —
below that, the sweep measures routing overhead, not parallelism — and
the json records the decision as ``speedup_enforced`` so the perf-trend
gate (``check_regression.py``) guards on it.

Results land in ``BENCH_fleet.json``.
"""

import os
import time

from repro.experiments.harness import formulate_behavior_queries
from repro.serving.fleet import (
    DetectionFleet,
    default_tenant_key,
    simulate_tenant_streams,
)
from repro.serving.service import DetectionService

from benchmarks.bench_common import (
    FLEET_BATCH,
    FLEET_INSTANCES,
    FLEET_QUEUE_DEPTH,
    FLEET_REPEATS,
    FLEET_SHARDS,
    FLEET_TENANTS,
    MIN_FLEET_SPEEDUP,
    MINING_SECONDS,
    emit,
    once,
    write_json,
)

#: Behaviors whose mined queries form the registered slate (shallow
#: mining — the benchmark measures serving, not mining).
SLATE_SIZE = 3
QUERY_EDGES = 3
QUERIES_PER_BEHAVIOR = 2
#: Seed for the tenant load generator.
TENANT_SEED = 11


def _formulate_slate(train, model):
    behaviors = tuple(train.config.behaviors)[:SLATE_SIZE]
    queries = []
    for behavior in behaviors:
        queries.extend(
            formulate_behavior_queries(
                train,
                behavior,
                max_edges=QUERY_EDGES,
                top_k=QUERIES_PER_BEHAVIOR,
                max_seconds=MINING_SECONDS,
                model=model,
            )
        )
    return queries


def _serial_union(queries, events):
    """Reference answer: one serial service per tenant, detections unioned."""
    per_tenant: dict = {}
    for event in events:
        per_tenant.setdefault(default_tenant_key(event), []).append(event)
    union = set()
    for tenant, tenant_events in per_tenant.items():
        service = DetectionService()
        service.register_all(queries)
        for _batch, detections in service.replay(tenant_events, FLEET_BATCH):
            union.update(
                (tenant, d.query, d.start, d.end) for d in detections
            )
    return union, len(per_tenant)


def _fleet_run(queries, events, shards):
    """One timed replay at a shard count; returns (detections, stats, wall)."""
    fleet = DetectionFleet(
        shards=shards,
        runner="process",
        queue_depth=FLEET_QUEUE_DEPTH,
    )
    fleet.register_all(queries)
    fleet.start()  # spawn + slate publication excluded from the timed window
    try:
        union = set()
        started = time.perf_counter()
        for _batch, detections in fleet.replay(events, FLEET_BATCH):
            union.update(d.key for d in detections)
        wall = time.perf_counter() - started
        stats = fleet.stats
    finally:
        fleet.close()
    return union, stats, wall


def test_fleet_shard_sweep(benchmark, train, model):
    queries = _formulate_slate(train, model)
    assert queries, "query formulation mined nothing; raise BENCH knobs"
    events = simulate_tenant_streams(
        tenants=FLEET_TENANTS,
        instances=FLEET_INSTANCES,
        seed=TENANT_SEED,
        chunk=FLEET_BATCH // 4 or 1,
    )

    def run():
        reference, tenants = _serial_union(queries, events)
        results = {}
        for shards in FLEET_SHARDS:
            best = None
            for _repeat in range(FLEET_REPEATS):
                union, stats, wall = _fleet_run(queries, events, shards)
                assert union == reference, (
                    f"fleet detections at {shards} shard(s) diverge from the "
                    "per-tenant serial union"
                )
                if best is None or wall < best[1]:
                    best = (stats, wall)
            results[shards] = best
        return reference, tenants, results

    reference, tenants, results = once(benchmark, run)

    emit("\n=== Fleet sweep: multi-tenant detection at 1/2/4 shards ===")
    emit(
        f"{FLEET_TENANTS} tenants x {FLEET_INSTANCES} instances -> "
        f"{len(events)} events, {len(queries)} queries, batches of "
        f"{FLEET_BATCH}, queue depth {FLEET_QUEUE_DEPTH}, "
        f"{len(reference)} expected detections"
    )
    emit(
        f"{'shards':>6s} {'seconds':>9s} {'events/s':>10s} {'p95 ms':>8s} "
        f"{'p99 ms':>8s} {'backpressure':>12s}"
    )
    per_shard_json = {}
    for shards, (stats, wall) in results.items():
        rate = len(events) / max(wall, 1e-9)
        p95 = stats.latency_percentile(0.95) * 1000
        p99 = stats.latency_percentile(0.99) * 1000
        emit(
            f"{shards:6d} {wall:9.3f} {rate:10,.0f} {p95:8.2f} {p99:8.2f} "
            f"{stats.backpressure_waits:12d}"
        )
        per_shard_json[str(shards)] = {
            "seconds": wall,
            "events_per_second": rate,
            "latency_p95_ms": p95,
            "latency_p99_ms": p99,
            "backpressure_waits": stats.backpressure_waits,
            "late_dropped": stats.late_dropped,
        }

    single = min(FLEET_SHARDS)
    widest = max(FLEET_SHARDS)
    single_wall = results[single][1]
    widest_wall = results[widest][1]
    fleet_speedup = single_wall / max(widest_wall, 1e-9)
    cpu_count = os.cpu_count() or 1
    speedup_enforced = (
        MIN_FLEET_SPEEDUP > 0
        and cpu_count >= widest
        and FLEET_TENANTS >= 32
    )
    status = (
        "enforced"
        if speedup_enforced
        else f"informational: {cpu_count} CPUs, {FLEET_TENANTS} tenants"
    )
    emit(
        f"fleet speedup {fleet_speedup:.2f}x at {widest} shards over "
        f"{single} ({status})"
    )

    write_json(
        "BENCH_fleet.json",
        {
            "tenants": FLEET_TENANTS,
            "instances_per_tenant": FLEET_INSTANCES,
            "events": len(events),
            "batch_size": FLEET_BATCH,
            "queue_depth": FLEET_QUEUE_DEPTH,
            "queries": len(queries),
            "detections": len(reference),
            "shard_counts": list(FLEET_SHARDS),
            "per_shard": per_shard_json,
            "events_per_second": per_shard_json[str(widest)]["events_per_second"],
            "latency_p95_ms": per_shard_json[str(widest)]["latency_p95_ms"],
            "latency_p99_ms": per_shard_json[str(widest)]["latency_p99_ms"],
            "fleet_speedup": fleet_speedup,
            "min_speedup_required": MIN_FLEET_SPEEDUP,
            "speedup_enforced": speedup_enforced,
            "cpu_count": cpu_count,
            "identical": True,  # asserted per shard count inside run()
        },
    )
    if speedup_enforced:
        assert fleet_speedup >= MIN_FLEET_SPEEDUP, (
            f"fleet scaling regressed: {fleet_speedup:.2f}x at {widest} "
            f"shards < {MIN_FLEET_SPEEDUP}x over {single} shard(s)"
        )
