"""Table 3: empirical probabilities that the pruning conditions trigger.

Expected shape (paper): subgraph pruning triggers on a large fraction of
processed patterns (60-70%+) across all size classes, supergraph pruning
on a small fraction (1-10%).
"""

from repro.core.miner import MinerConfig
from repro.experiments.harness import mine_behavior

from benchmarks.bench_common import MINING_SECONDS, emit, once, scale_guard

BEHAVIORS = {"small": "ftp-download", "medium": "ftpd-login", "large": "sshd-login"}


def test_table3_pruning_trigger_rates(benchmark, train):
    def run():
        rates = {}
        for cls, behavior in BEHAVIORS.items():
            result = mine_behavior(
                train,
                behavior,
                MinerConfig(
                    max_edges=4,
                    min_pos_support=0.7,
                    max_seconds=MINING_SECONDS,
                ),
            )
            rates[cls] = (
                result.stats.subgraph_trigger_rate(),
                result.stats.supergraph_trigger_rate(),
                result.stats.patterns_explored,
            )
        return rates

    rates = once(benchmark, run)
    emit("\n=== Table 3: pruning-condition trigger probabilities ===")
    emit(f"{'class':8s} {'subgraph':>9s} {'supergraph':>11s} {'#patterns':>10s}")
    for cls, (sub, sup, explored) in rates.items():
        emit(f"{cls:8s} {sub * 100:8.1f}% {sup * 100:10.1f}% {explored:10d}")
    # shape: subgraph pruning dominates supergraph pruning everywhere
    for cls, (sub, sup, _explored) in rates.items():
        assert sub >= sup, f"supergraph pruning unexpectedly dominant on {cls}"
    if scale_guard(
        "subgraph pruning triggers > 20%", train_instances=8, background_graphs=24
    ):
        # residual-set collisions (what both prunings key on) need the
        # full corpus size to occur at the paper's rates
        assert any(sub > 0.2 for sub, _sup, _e in rates.values())
