"""Figure 10: examples of discovered discriminative patterns.

Mines sshd-login, wget-download, and ftp-download and prints the
top-ranked pattern of each — the qualitative counterpart of the paper's
figure (e.g. the sshd-login pattern involving login records rather than
any "sshd"-keyword node, and the library/socket access orders that
separate wget- from ftp-based download).
"""

from repro.core.miner import MinerConfig
from repro.core.ranking import rank_patterns
from repro.experiments.harness import mine_behavior

from benchmarks.bench_common import MINING_SECONDS, emit, once


def _top_pattern(train, model, behavior, max_edges=4):
    result = mine_behavior(
        train,
        behavior,
        MinerConfig(
            max_edges=max_edges,
            min_pos_support=0.7,
            max_seconds=MINING_SECONDS,
        ),
    )
    ranked = rank_patterns(result.best, model)
    return ranked[0].pattern, result


def test_fig10_discovered_patterns(benchmark, train, model):
    def run():
        return {
            name: _top_pattern(train, model, name)
            for name in ("sshd-login", "wget-download", "ftp-download")
        }

    results = once(benchmark, run)
    emit("\n=== Figure 10: discovered discriminative patterns ===")
    for name, (pattern, result) in results.items():
        emit(f"\n--- {name} (score {result.best_score:.2f}) ---")
        emit(pattern.describe())
    wget_labels = {
        results["wget-download"][0].label(n)
        for n in range(results["wget-download"][0].num_nodes)
    }
    ftp_labels = {
        results["ftp-download"][0].label(n)
        for n in range(results["ftp-download"][0].num_nodes)
    }
    # the two download behaviors are separated by distinct access patterns
    assert wget_labels != ftp_labels
