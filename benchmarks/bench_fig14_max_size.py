"""Figure 14: response time vs. the largest pattern size explored.

Expected shape (paper): response time grows with the size cap, with the
small size class finishing fastest at every cap.
"""

import time

from repro.core.miner import MinerConfig
from repro.experiments.harness import mine_behavior

from benchmarks.bench_common import MINING_SECONDS, emit, once

SIZES = (2, 3, 4, 5)
BEHAVIORS = {"small": "gzip-decompress", "medium": "ftpd-login", "large": "sshd-login"}


def test_fig14_response_time_vs_max_size(benchmark, train):
    def run():
        table = {}
        for size in SIZES:
            row = {}
            for cls, behavior in BEHAVIORS.items():
                started = time.perf_counter()
                mine_behavior(
                    train,
                    behavior,
                    MinerConfig(
                        max_edges=size, min_pos_support=0.7, max_seconds=MINING_SECONDS
                    ),
                )
                row[cls] = time.perf_counter() - started
            table[size] = row
        return table

    table = once(benchmark, run)
    emit("\n=== Figure 14: response time vs largest allowed pattern size ===")
    emit(f"{'max size':>8s} {'small':>9s} {'medium':>9s} {'large':>9s}  (seconds)")
    for size in SIZES:
        row = table[size]
        emit(f"{size:8d} {row['small']:9.3f} {row['medium']:9.3f} {row['large']:9.3f}")
    # shape: larger caps never get cheaper by much, classes order correctly
    assert table[SIZES[-1]]["large"] >= table[SIZES[0]]["large"] * 0.8
    assert table[SIZES[-1]]["small"] <= table[SIZES[-1]]["large"]
