"""Figure 11: query accuracy vs. behavior-query size (1..N edges).

Expected shape (paper): precision rises with query size and saturates
around size ~6; recall dips slightly.  The sweep uses the confusable ssh
family member plus one easy behavior, averaged.
"""

from repro.experiments.harness import accuracy_for_behavior

from benchmarks.bench_common import emit, once

SIZES = (1, 2, 3, 4, 6)
BEHAVIORS = ("ssh-login", "wget-download")


def test_fig11_accuracy_vs_query_size(benchmark, train, test_data, engine, model):
    def run():
        table = {}
        for size in SIZES:
            precisions, recalls = [], []
            for name in BEHAVIORS:
                row = accuracy_for_behavior(
                    train,
                    test_data,
                    name,
                    engine=engine,
                    model=model,
                    methods=("tgminer",),
                    query_size=size,
                    mining_seconds=15.0,
                )
                precisions.append(row.tgminer.precision)
                recalls.append(row.tgminer.recall)
            table[size] = (
                sum(precisions) / len(precisions),
                sum(recalls) / len(recalls),
            )
        return table

    table = once(benchmark, run)
    emit("\n=== Figure 11: accuracy vs behavior query size ===")
    emit(f"{'size':>4s} {'precision':>10s} {'recall':>8s}")
    for size in SIZES:
        p, r = table[size]
        emit(f"{size:4d} {p * 100:10.1f} {r * 100:8.1f}")
    # shape: precision at the largest size >= precision at size 1
    assert table[SIZES[-1]][0] >= table[1][0]
