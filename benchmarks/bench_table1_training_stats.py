"""Table 1: statistics of the training data.

Prints avg #nodes, avg #edges, and total #labels per behavior plus the
background row, in the paper's order.  The benchmarked operation is the
full training-corpus generation.
"""

import statistics

from repro.syscall import BEHAVIOR_NAMES, SIZE_CLASSES, build_training_data

from benchmarks.bench_common import (
    BACKGROUND_GRAPHS,
    TRAIN_INSTANCES,
    emit,
    once,
    scale_guard,
)


def _size_class(name: str) -> str:
    for cls, names in SIZE_CLASSES.items():
        if name in names:
            return cls
    return "-"


def test_table1_training_statistics(benchmark):
    data = once(
        benchmark,
        build_training_data,
        instances_per_behavior=TRAIN_INSTANCES,
        background_graphs=BACKGROUND_GRAPHS,
    )
    emit("\n=== Table 1: statistics of the training data (scaled) ===")
    emit(
        f"{'Behavior':20s} {'avg #nodes':>10s} {'avg #edges':>10s} "
        f"{'#labels':>8s} {'size':>7s}"
    )
    for name in BEHAVIOR_NAMES:
        graphs = data.behavior(name)
        nodes = statistics.mean(g.num_nodes for g in graphs)
        edges = statistics.mean(g.num_edges for g in graphs)
        labels = len({l for g in graphs for l in g.label_set()})
        emit(
            f"{name:20s} {nodes:10.1f} {edges:10.1f} {labels:8d} "
            f"{_size_class(name):>7s}"
        )
    bg = data.background
    nodes = statistics.mean(g.num_nodes for g in bg)
    edges = statistics.mean(g.num_edges for g in bg)
    labels = len({l for g in bg for l in g.label_set()})
    emit(f"{'background':20s} {nodes:10.1f} {edges:10.1f} {labels:8d} {'-':>7s}")

    # shape assertions: size classes must order as in the paper
    def avg_edges(name):
        return statistics.mean(g.num_edges for g in data.behavior(name))

    assert (
        avg_edges("bzip2-decompress")
        < avg_edges("ssh-login")
        < avg_edges("sshd-login")
    )
    if scale_guard("background label diversity > 300", background_graphs=24):
        assert labels > 300  # background label diversity dwarfs any behavior's
