"""Perf-trend gate: compare fresh ``BENCH_*.json`` files against baselines.

CI's bench-smoke job runs the ablation benchmarks and then this script.
Gated metrics are **within-run ratios and soundness flags** (streaming
speedup over rebuild, byte-identity booleans): ratios compare two
measurements taken on the same machine in the same run, so they transfer
across runner hardware, unlike absolute seconds.  Absolute metrics
(events/sec, wall seconds) are reported for trend reading but only gated
with ``--include-absolute``.

Policy (per metric, relative tolerance ``--tolerance``, default 25%):

* a gated ratio **below** ``baseline * (1 - tol)`` is a **regression**
  → exit 1;
* a gated ratio **above** ``baseline * (1 + tol)`` is an **unreported
  speedup** — the baseline understates where the code is, so trend
  gating has lost its bite → exit 2, refresh with ``--write``;
* a soundness boolean that is not ``true`` → exit 1;
* a baselined file missing from the current results → exit 1;
* a current file with no baseline → exit 2 (add it with ``--write``).

Usage::

    python benchmarks/check_regression.py --current bench-artifacts
    python benchmarks/check_regression.py --current . --write   # refresh
"""

from __future__ import annotations

import argparse
import json
import shutil
from dataclasses import dataclass
from pathlib import Path

__all__ = ["main", "compare", "Metric", "METRICS"]

OK = 0
REGRESSION = 1
REFRESH_NEEDED = 2

#: Verdict precedence: a regression always outranks a refresh request —
#: numeric exit codes don't order by severity (2 is *less* severe than 1).
_SEVERITY = {OK: 0, REFRESH_NEEDED: 1, REGRESSION: 2}


@dataclass(frozen=True)
class Metric:
    """One gated (or informational) value inside a BENCH json file."""

    file: str
    key: str
    #: "higher_better" ratios are gated both ways; "bool_true" must hold;
    #: "absolute" is informational unless --include-absolute.
    kind: str
    #: key of a boolean that must be true in BOTH runs for the gate to
    #: apply (e.g. parallel speedups are only meaningful when the host
    #: had enough cores — the bench records that as ``speedup_enforced``).
    guard: str | None = None


METRICS = [
    Metric("BENCH_serving.json", "speedup", "higher_better"),
    Metric("BENCH_serving.json", "identical", "bool_true"),
    Metric("BENCH_serving.json", "events_per_second", "absolute"),
    Metric("BENCH_serving.json", "latency_p95_ms", "absolute"),
    Metric("BENCH_kernel.json", "speedup", "higher_better"),
    Metric("BENCH_kernel.json", "identical", "bool_true"),
    Metric("BENCH_kernel.json", "growth_speedup", "absolute"),
    # the vectorized-join ratio: gated wherever numpy was the active
    # backend in both runs (the bench records that as the guard)
    Metric(
        "BENCH_kernel.json",
        "match_speedup",
        "higher_better",
        guard="match_speedup_enforced",
    ),
    Metric("BENCH_fleet.json", "identical", "bool_true"),
    # aggregate-throughput scaling at the widest shard count: a
    # within-run ratio, but only meaningful with enough CPUs and tenants
    # (the bench records that as the guard)
    Metric(
        "BENCH_fleet.json", "fleet_speedup", "higher_better", guard="speedup_enforced"
    ),
    Metric("BENCH_fleet.json", "events_per_second", "absolute"),
    Metric("BENCH_fleet.json", "latency_p95_ms", "absolute"),
    Metric("BENCH_fleet.json", "latency_p99_ms", "absolute"),
    # durability: plain / crash-recovered / uninterrupted-durable runs
    # must be span-identical; the WAL+snapshot tax is gated as the
    # within-run efficiency ratio (plain/durable, ~0.9 at the 10%
    # ceiling) wherever the plain run was long enough to measure it
    Metric("BENCH_recovery.json", "identical", "bool_true"),
    Metric(
        "BENCH_recovery.json",
        "durable_efficiency",
        "higher_better",
        guard="overhead_enforced",
    ),
    Metric("BENCH_recovery.json", "overhead_pct", "absolute"),
    Metric("BENCH_recovery.json", "recovery_seconds", "absolute"),
    # the HTTP tier must be a pure transport: detection sets identical
    # to direct ingest; its overhead is an informational trend line
    Metric("BENCH_http.json", "identical", "bool_true"),
    Metric("BENCH_http.json", "overhead_ratio", "absolute"),
    Metric("BENCH_http.json", "http_events_per_second", "absolute"),
    # the disk-backed corpus store: mined patterns and detection spans
    # must match the in-memory path exactly; the streaming reader must
    # stay under the self-calibrated memory budget (the bool embeds its
    # own scale guard); the store-vs-memory mining ratio is gated
    # wherever the run was long enough to measure decode overhead
    Metric("BENCH_store.json", "identical", "bool_true"),
    Metric("BENCH_store.json", "rss_bounded", "bool_true"),
    Metric(
        "BENCH_store.json",
        "store_efficiency",
        "higher_better",
        guard="efficiency_enforced",
    ),
    Metric("BENCH_store.json", "build_edges_per_second", "absolute"),
    Metric("BENCH_store.json", "rss_ratio", "absolute"),
    Metric("BENCH_store.json", "scan_ratio", "absolute"),
    Metric("BENCH_parallel.json", "identical", "bool_true"),
    Metric(
        "BENCH_parallel.json", "seed_speedup", "higher_better", guard="speedup_enforced"
    ),
    Metric(
        "BENCH_parallel.json", "fan_speedup", "higher_better", guard="speedup_enforced"
    ),
]


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def compare(
    current_dir: Path,
    baseline_dir: Path,
    tolerance: float = 0.25,
    include_absolute: bool = False,
) -> tuple[int, list[str]]:
    """Return ``(exit_code, report_lines)`` for the two result trees."""
    lines: list[str] = []
    worst = OK

    def note(status: int, line: str) -> None:
        nonlocal worst
        if _SEVERITY[status] > _SEVERITY[worst]:
            worst = status
        lines.append(line)

    baseline_files = sorted(p.name for p in baseline_dir.glob("BENCH_*.json"))
    current_files = sorted(p.name for p in current_dir.glob("BENCH_*.json"))
    for name in current_files:
        if name not in baseline_files:
            note(
                REFRESH_NEEDED,
                f"UNBASELINED  {name}: no committed baseline — add it with --write",
            )
    for name in baseline_files:
        if name not in current_files:
            note(
                REGRESSION,
                f"MISSING      {name}: baselined but not produced by this run",
            )

    for metric in METRICS:
        if metric.file not in baseline_files or metric.file not in current_files:
            continue
        base = _load(baseline_dir / metric.file)
        cur = _load(current_dir / metric.file)
        if metric.key not in base or metric.key not in cur:
            note(
                REGRESSION,
                f"MISSING      {metric.file}:{metric.key}: absent from "
                f"{'baseline' if metric.key not in base else 'current'} results",
            )
            continue
        label = f"{metric.file}:{metric.key}"
        base_value, cur_value = base[metric.key], cur[metric.key]

        if metric.kind == "bool_true":
            if cur_value is True:
                note(OK, f"OK           {label} = true")
            else:
                note(REGRESSION, f"REGRESSION   {label} = {cur_value} (must be true)")
            continue

        if metric.guard is not None and not (
            base.get(metric.guard) and cur.get(metric.guard)
        ):
            if cur.get(metric.guard) and not base.get(metric.guard):
                # the current run could measure this but the committed
                # baseline couldn't (e.g. recorded on a 1-core box).  Warn
                # on every run — loudly, not fatally: failing each PR over
                # a hardware asymmetry would train people to ignore the
                # gate — until someone re-records the baseline with
                # --write on capable hardware.
                note(
                    OK,
                    f"UNGUARDED    {label}: baseline lacks {metric.guard!r}; "
                    "this metric is NOT gated — refresh the baseline from "
                    "this run with --write",
                )
            else:
                note(OK, f"SKIPPED      {label}: guard {metric.guard!r} not set")
            continue

        gated = metric.kind == "higher_better" or include_absolute
        if not gated:
            note(
                OK,
                f"INFO         {label} = {cur_value:,.2f} "
                f"(base {base_value:,.2f})",
            )
            continue
        low, high = base_value * (1 - tolerance), base_value * (1 + tolerance)
        if cur_value < low:
            note(
                REGRESSION,
                f"REGRESSION   {label} = {cur_value:.3f} "
                f"(< {low:.3f}, baseline {base_value:.3f} - {tolerance:.0%})",
            )
        elif cur_value > high:
            note(
                REFRESH_NEEDED,
                f"SPEEDUP      {label} = {cur_value:.3f} "
                f"(> {high:.3f}, baseline {base_value:.3f} + {tolerance:.0%}) "
                "— refresh the baseline with --write",
            )
        else:
            note(
                OK,
                f"OK           {label} = {cur_value:.3f} "
                f"(baseline {base_value:.3f} ± {tolerance:.0%})",
            )
    return worst, lines


def write_baselines(current_dir: Path, baseline_dir: Path) -> list[str]:
    """Copy the current BENCH files over the committed baselines."""
    baseline_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for path in sorted(current_dir.glob("BENCH_*.json")):
        shutil.copyfile(path, baseline_dir / path.name)
        written.append(path.name)
    return written


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--current", default=".", help="directory holding fresh BENCH_*.json files"
    )
    parser.add_argument(
        "--baselines",
        default=str(Path(__file__).parent / "baselines"),
        help="directory holding committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25, help="relative band (0.25 = 25%%)"
    )
    parser.add_argument(
        "--include-absolute",
        action="store_true",
        help="also gate machine-dependent absolute metrics (same-host trends)",
    )
    parser.add_argument(
        "--report-only",
        action="store_true",
        help="print the comparison but always exit 0 (nightly trend job)",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="refresh the baselines from the current results and exit 0",
    )
    args = parser.parse_args(argv)
    current_dir, baseline_dir = Path(args.current), Path(args.baselines)
    if not current_dir.is_dir():
        print(f"error: current results directory missing: {current_dir}")
        return REGRESSION

    if args.write:
        written = write_baselines(current_dir, baseline_dir)
        for name in written:
            print(f"baseline refreshed: {baseline_dir / name}")
        return OK if written else REGRESSION

    code, lines = compare(
        current_dir,
        baseline_dir,
        tolerance=args.tolerance,
        include_absolute=args.include_absolute,
    )
    print(f"perf-trend gate: {current_dir} vs baselines in {baseline_dir}")
    for line in lines:
        print(f"  {line}")
    verdict = {
        OK: "OK",
        REGRESSION: "REGRESSION (exit 1)",
        REFRESH_NEEDED: "BASELINE REFRESH NEEDED (exit 2)",
    }[code]
    print(f"verdict: {verdict}")
    return OK if args.report_only else code


if __name__ == "__main__":
    raise SystemExit(main())
