"""Figure 13 (a/b/c): mining response time of TGMiner vs. the five
baseline variants on small/medium/large behaviors.

Expected shape (paper): TGMiner fastest everywhere; SubPrune and
SupPrune lose most (supergraph-only pruning far weaker than
subgraph-only); PruneVF2 / PruneGI / LinearScan pay for slower subgraph
tests / residual comparisons.  Runs hitting the wall-clock cap are
reported as ">= cap" (the paper's SupPrune similarly "cannot finish
within 2 days" on bigger classes).
"""

import time

import pytest

from repro.core.miner import MinerConfig, miner_variant
from repro.experiments.harness import mine_behavior

from benchmarks.bench_common import MINING_SECONDS, emit, once, scale_guard

#: one representative behavior per size class (with a per-class search
#: depth), to bound total benchmark time
REPRESENTATIVES = {
    "small": ("ftp-download", 6),
    "medium": ("ftpd-login", 6),
    "large": ("sshd-login", 5),
}
VARIANTS = ("TGMiner", "SubPrune", "SupPrune", "PruneGI", "PruneVF2", "LinearScan")
#: variants whose slowdown comes from per-test overhead (slower subgraph
#: tests / residual comparisons); their ordering vs TGMiner reproduces at
#: laptop scale.  SubPrune/SupPrune differ through *branch cutting*, which
#: needs the paper's full-scale tie-free score landscape to bite — see
#: EXPERIMENTS.md for the divergence note.
OVERHEAD_VARIANTS = ("PruneGI", "PruneVF2", "LinearScan")


@pytest.mark.parametrize("size_class", ("small", "medium", "large"))
def test_fig13_variant_response_time(benchmark, train, size_class):
    behavior, max_edges = REPRESENTATIVES[size_class]

    def run():
        timings = {}
        for variant in VARIANTS:
            config = miner_variant(
                variant,
                MinerConfig(
                    max_edges=max_edges,
                    min_pos_support=0.6,
                    max_seconds=MINING_SECONDS,
                ),
            )
            started = time.perf_counter()
            result = mine_behavior(train, behavior, config)
            elapsed = time.perf_counter() - started
            timings[variant] = (elapsed, result.stats.timed_out, result.best_score)
        return timings

    timings = once(benchmark, run)
    emit(f"\n=== Figure 13 ({size_class}: {behavior}): response time by variant ===")
    emit(f"{'variant':12s} {'seconds':>9s} {'rel. to TGMiner':>16s}")
    base = timings["TGMiner"][0]
    for variant in VARIANTS:
        elapsed, timed_out, _score = timings[variant]
        marker = " (hit cap)" if timed_out else ""
        emit(f"{variant:12s} {elapsed:9.2f} {elapsed / base:15.1f}x{marker}")
    # shape: TGMiner beats every overhead-based baseline — at smoke scale
    # the per-test overheads being measured are microseconds and the
    # ordering is noise, so only assert it at full scale
    if scale_guard("TGMiner beats overhead baselines"):
        for variant in OVERHEAD_VARIANTS:
            assert timings[variant][0] >= base, f"{variant} unexpectedly faster"
    # all variants that finished must agree on the best score
    finished = [v for v in VARIANTS if not timings[v][1]]
    scores = {round(timings[v][2], 9) for v in finished}
    assert len(scores) == 1
