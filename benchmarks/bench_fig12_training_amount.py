"""Figure 12: query accuracy vs. amount of used training data.

Expected shape (paper): precision/recall improve with more training data
with diminishing returns.
"""

from repro.experiments.harness import accuracy_for_behavior

from benchmarks.bench_common import emit, once

FRACTIONS = (0.25, 0.5, 1.0)
BEHAVIORS = ("ssh-login", "ftp-download")


def test_fig12_accuracy_vs_training_amount(benchmark, train, test_data, engine, model):
    def run():
        table = {}
        for fraction in FRACTIONS:
            subset = train.subset(fraction)
            precisions, recalls = [], []
            for name in BEHAVIORS:
                row = accuracy_for_behavior(
                    subset,
                    test_data,
                    name,
                    engine=engine,
                    model=model,
                    methods=("tgminer",),
                    query_size=6,
                    mining_seconds=15.0,
                )
                precisions.append(row.tgminer.precision)
                recalls.append(row.tgminer.recall)
            table[fraction] = (
                sum(precisions) / len(precisions),
                sum(recalls) / len(recalls),
            )
        return table

    table = once(benchmark, run)
    emit("\n=== Figure 12: accuracy vs amount of used training data ===")
    emit(f"{'fraction':>8s} {'precision':>10s} {'recall':>8s}")
    for fraction in FRACTIONS:
        p, r = table[fraction]
        emit(f"{fraction:8.2f} {p * 100:10.1f} {r * 100:8.1f}")
    # full data should not do materially worse than the smallest subset
    assert table[1.0][0] >= table[FRACTIONS[0]][0] - 0.1
