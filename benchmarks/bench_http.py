"""HTTP serving-tier overhead: ``POST /v1/ingest`` vs direct ingest.

The HTTP tier wraps the same :class:`DetectionService` the in-process
path uses, so the delta between the two runs is pure transport cost:
JSON encode/decode of every event batch, one request/response round
trip per batch over a persistent loopback connection, and the server's
dispatch + ring-buffer bookkeeping.  The tier makes no detection
decisions of its own, so both paths must report the **identical**
detection set — that soundness boolean is the gated metric; the
overhead ratio and throughput are informational trend lines
(``benchmarks/check_regression.py``).
"""

import http.client
import json
import time

from repro.datasets.io import event_to_dict
from repro.serving.http import serve_http
from repro.serving.service import DetectionService
from repro.syscall.collector import iter_event_batches

from benchmarks.bench_common import (
    SERVING_BATCH,
    SERVING_REPEATS,
    emit,
    once,
    write_json,
)
from benchmarks.bench_serving import _formulate_slate


def _fresh_service(queries):
    service = DetectionService()
    service.register_all(queries)
    return service


def _direct_run(queries, batches):
    service = _fresh_service(queries)
    spans = set()
    started = time.perf_counter()
    for batch in batches:
        for detection in service.ingest(batch):
            spans.add((detection.query, detection.span[0], detection.span[1]))
    return spans, time.perf_counter() - started


def _http_run(queries, batches):
    server = serve_http(_fresh_service(queries)).start_background()
    host, port = server.address
    spans = set()
    try:
        connection = http.client.HTTPConnection(host, port)
        started = time.perf_counter()
        for batch in batches:
            body = json.dumps({"events": [event_to_dict(e) for e in batch]})
            connection.request(
                "POST",
                "/v1/ingest",
                body,
                {"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = json.loads(response.read())
            assert response.status == 200, payload
            for detection in payload["detections"]:
                spans.add((detection["query"], detection["start"], detection["end"]))
        seconds = time.perf_counter() - started
        connection.close()
    finally:
        server.close()
    return spans, seconds


def test_http_ingest_overhead(benchmark, train, test_data, model):
    queries = _formulate_slate(train, model)
    assert queries, "query formulation mined nothing; raise BENCH knobs"
    events = test_data.events
    batches = list(iter_event_batches(events, SERVING_BATCH))

    def run():
        # best-of-N per mode (same denoiser as the serving ablation);
        # span sets must agree on every repeat, not just the fastest
        direct_spans, direct_seconds = _direct_run(queries, batches)
        for _repeat in range(SERVING_REPEATS - 1):
            spans, seconds = _direct_run(queries, batches)
            assert spans == direct_spans, "direct run is nondeterministic"
            direct_seconds = min(direct_seconds, seconds)
        http_spans, http_seconds = _http_run(queries, batches)
        for _repeat in range(SERVING_REPEATS - 1):
            spans, seconds = _http_run(queries, batches)
            assert spans == http_spans, "HTTP run is nondeterministic"
            http_seconds = min(http_seconds, seconds)
        return direct_spans, direct_seconds, http_spans, http_seconds

    direct_spans, direct_seconds, http_spans, http_seconds = once(benchmark, run)

    identical = http_spans == direct_spans
    overhead = http_seconds / max(direct_seconds, 1e-9)
    direct_rate = len(events) / max(direct_seconds, 1e-9)
    http_rate = len(events) / max(http_seconds, 1e-9)
    per_batch_ms = (http_seconds - direct_seconds) / max(len(batches), 1) * 1000

    emit("\n=== HTTP tier: POST /v1/ingest vs direct in-process ingest ===")
    emit(
        f"{len(queries)} queries over {len(events)} events in "
        f"{len(batches)} batches of {SERVING_BATCH}"
    )
    emit(f"{'mode':24s} {'seconds':>9s} {'events/s':>10s}")
    emit(f"{'direct ingest':24s} {direct_seconds:9.3f} {direct_rate:10,.0f}")
    emit(f"{'HTTP /v1/ingest':24s} {http_seconds:9.3f} {http_rate:10,.0f}")
    emit(
        f"overhead {overhead:.2f}x (~{per_batch_ms:.2f}ms per batch); "
        f"detections identical: {identical}"
    )

    write_json(
        "BENCH_http.json",
        {
            "events": len(events),
            "batches": len(batches),
            "batch_size": SERVING_BATCH,
            "queries": len(queries),
            "detections": len(direct_spans),
            "direct_seconds": direct_seconds,
            "http_seconds": http_seconds,
            "overhead_ratio": overhead,
            "overhead_ms_per_batch": per_batch_ms,
            "direct_events_per_second": direct_rate,
            "http_events_per_second": http_rate,
            "identical": identical,
        },
    )
    # soundness: the transport must not change what gets detected
    assert identical, "HTTP detections diverge from direct ingest"
