"""Corpus-store ablation: larger-than-RAM mining and query from disk.

The disk-backed :class:`~repro.datasets.store.CorpusStore` claims three
things, and this benchmark measures all three against the in-memory path
on the same corpus:

* **identity** — mining from the store and windowed query over a stored
  log produce exactly the patterns and spans the in-memory path does
  (content identity: pattern keys, scores, frequencies, span caps —
  everything but wall-clock);
* **residency** — the streaming pipeline peaks well below what the
  in-memory pipeline keeps resident.  The corpus is shaped like a real
  larger-than-RAM deployment: the behavior partitions are replicated
  ``STORE_REPLICAS`` times over one shared background set, and the
  monitor log holds ``STORE_DAYS`` days of the test stream.  The
  in-memory pipeline materializes the full training corpus to mine and
  the whole multi-day log graph to batch-query (a frozen graph's
  per-edge suffix indexes make the latter the dominant term); the
  streaming pipeline holds the shared background plus one behavior
  partition while mining and one scan window while querying.  Each
  pipeline runs end to end in a fresh *spawned* subprocess with the
  kernel's peak-RSS counter reset first (``/proc/self/clear_refs``),
  so each ``VmHWM`` delta is that pipeline's true peak — not the
  interpreter's import-time high-water mark.  The budget is
  self-calibrating — a quarter of the measured in-memory peak — so
  the assertion is exactly the ISSUE's "corpus at least 4x larger than
  the memory budget" at whatever scale the run uses;
* **throughput** — build rate (edges/s into the store), the
  store-vs-memory mining efficiency ratio (within-run, transfers
  across runner hardware), and the windowed-scan vs
  materialize-and-batch-query ratio over the stored log.

Results land in ``BENCH_store.json`` for the CI perf-trend gate
(``benchmarks/check_regression.py``).
"""

import multiprocessing
import resource
import time
from dataclasses import replace

from repro.api.workspace import Workspace
from repro.core.miner import MinerConfig
from repro.datasets.store import CorpusStore
from repro.datasets.synthetic import replicate_graphs
from repro.syscall import build_training_data, events_to_graph
from repro.syscall.collector import TrainingData

from benchmarks.bench_common import (
    BACKGROUND_GRAPHS,
    MINING_SECONDS,
    STORE_DAYS,
    STORE_EFFICIENCY_FLOOR,
    STORE_MAX_EDGES,
    STORE_PAGE_EDGES,
    STORE_REPLICAS,
    STORE_RSS_FLOOR_MB,
    TEST_INSTANCES,
    TRAIN_INSTANCES,
    emit,
    once,
    write_json,
)

CONFIG = MinerConfig(max_edges=STORE_MAX_EDGES, max_seconds=MINING_SECONDS)


def _rss_mb() -> float:
    """Current peak RSS of this process in MB (Linux reports KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024


def _status_mb(field: str) -> float | None:
    """Read one KB-valued field (``VmRSS``, ``VmHWM``) from /proc, in MB."""
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith(field + ":"):
                    return int(line.split()[1]) / 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def _rss_window_open() -> tuple[bool, float]:
    """Start a peak-RSS measurement window; return ``(windowed, baseline)``.

    Writing ``5`` to ``/proc/self/clear_refs`` resets the kernel's
    ``VmHWM`` high-water mark to the current ``VmRSS``, so the peak read
    at window close covers only the work done inside the window — the
    interpreter's import-time spike (which can dwarf a few-MB corpus)
    is excluded.  Where /proc is unavailable the rusage peak is the
    fallback and the window is marked unmeasured.
    """
    try:
        with open("/proc/self/clear_refs", "w") as fh:
            fh.write("5")
    except OSError:
        return False, _rss_mb()
    baseline = _status_mb("VmRSS")
    if baseline is None:
        return False, _rss_mb()
    return True, baseline


def _rss_window_close(windowed: bool, baseline: float) -> tuple[float, bool]:
    """End a window; return ``(delta_mb, measured)``."""
    if windowed:
        peak = _status_mb("VmHWM")
        if peak is not None:
            return max(0.0, peak - baseline), True
    return max(0.0, _rss_mb() - baseline), False


def _model_fingerprint(model) -> tuple:
    """Content identity of a mined model: everything but wall-clock."""
    return (
        model.labels,
        tuple(
            (
                name,
                record.span_cap,
                tuple(
                    (p.pattern.key(), p.score, p.pos_freq, p.neg_freq)
                    for p in record.patterns
                ),
            )
            for name, record in sorted(model.records.items())
        ),
    )


def _span_map(result) -> dict:
    """Detection spans per behavior — the query-identity payload."""
    return {
        name: tuple(report.spans) for name, report in result.behaviors.items()
    }


def _inmem_pipeline(store_path, queue):
    """Subprocess: the baseline the store competes with, end to end.

    One peak-RSS window covers the whole pipeline: materialize the
    training corpus, mine it, then materialize the full multi-day log
    graph and batch-query it.  Mining runs *before* the log graph is
    built, so its timing is clean of the GC pressure a gigabyte of
    frozen-graph indexes would add; the window still captures the
    pipeline's true peak (the resident log graph dominates it).  The
    query timing includes materializing the log graph — that build is
    the price of batch-querying a stored log, exactly what the
    windowed scan amortizes away.
    """
    windowed, baseline_mb = _rss_window_open()
    with CorpusStore.open(store_path) as store:
        train = store.load_training_data()
        ws = Workspace()
        started = time.perf_counter()
        model = ws.mine(train, config=CONFIG)
        mine_seconds = time.perf_counter() - started
        started = time.perf_counter()
        log_graph = store.window("monitor", *store.extent("monitor"))
        batch = ws.query(model, log_graph)
        batch_seconds = time.perf_counter() - started
    delta_mb, measured = _rss_window_close(windowed, baseline_mb)
    queue.put(
        {
            "rss_delta_mb": delta_mb,
            "rss_measured": measured,
            "mine_seconds": mine_seconds,
            "query_seconds": batch_seconds,
            "fingerprint": _model_fingerprint(model),
            "spans": _span_map(batch),
        }
    )


def _store_pipeline(store_path, budget_mb, queue):
    """Subprocess: the same pipeline streaming from the store.

    One peak-RSS window covers mining from the store (shared
    background resident, one behavior partition decoded at a time)
    and the windowed scan query over the stored multi-day log (one
    scan window resident at a time).  The delta is the streaming
    pipeline's true end-to-end peak, asserted against the
    self-calibrated budget.  Spans are comparable across children
    because the identity assertion separately requires the two mined
    models to be content-identical.
    """
    windowed, baseline_mb = _rss_window_open()
    ws = Workspace()
    started = time.perf_counter()
    model = ws.mine(store=store_path, config=CONFIG, memory_budget_mb=budget_mb)
    mine_seconds = time.perf_counter() - started
    started = time.perf_counter()
    scan = ws.query(
        model, store=store_path, log="monitor", memory_budget_mb=budget_mb
    )
    scan_seconds = time.perf_counter() - started
    delta_mb, measured = _rss_window_close(windowed, baseline_mb)
    queue.put(
        {
            "rss_delta_mb": delta_mb,
            "rss_measured": measured,
            "mine_seconds": mine_seconds,
            "query_seconds": scan_seconds,
            "fingerprint": _model_fingerprint(model),
            "spans": _span_map(scan),
        }
    )


def _run_child(target, *args):
    """Run one pipeline in a fresh spawned process; return its dict.

    ``spawn`` (not fork) so the child's peak-RSS accounting starts from
    a clean interpreter, not from whatever the parent had resident.
    """
    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    proc = ctx.Process(target=target, args=(*args, queue))
    proc.start()
    result = queue.get()
    proc.join()
    return result


def _multi_day_events(day_events) -> list:
    """Replay the one-day test stream at daily offsets, back to back."""
    day_len = day_events[-1].time - day_events[0].time + 1
    return [
        replace(event, time=event.time + day * day_len)
        for day in range(STORE_DAYS)
        for event in day_events
    ]


def test_store_mining_and_query(benchmark, test_data, tmp_path):
    base = build_training_data(
        instances_per_behavior=TRAIN_INSTANCES,
        background_graphs=BACKGROUND_GRAPHS,
    )
    # replicate only the behavior partitions: the streaming reader's
    # working set (background + one partition) then stays a small,
    # replica-independent fraction of the corpus — the shape the
    # larger-than-RAM claim is about
    train = TrainingData(
        config=base.config,
        behaviors={
            name: replicate_graphs(graphs, STORE_REPLICAS)
            for name, graphs in base.behaviors.items()
        },
        background=base.background,
    )
    events = _multi_day_events(test_data.events)
    store_path = str(tmp_path / "corpus.store")

    def run():
        # --- build: stream the corpus into the single-file store
        log_graph = events_to_graph(events, name="monitor")
        started = time.perf_counter()
        with CorpusStore.create(store_path, page_edges=STORE_PAGE_EDGES) as s:
            graphs = s.add_training_data(train)
            s.add_log("monitor", graph=log_graph, events=events)
            info = s.info()
        build_seconds = time.perf_counter() - started
        del log_graph

        # --- residency + identity: each pipeline in a spawned process
        inmem = _run_child(_inmem_pipeline, store_path)
        budget_mb = max(1.0, inmem["rss_delta_mb"] / 4)
        stored = _run_child(_store_pipeline, store_path, budget_mb)
        return graphs, info, build_seconds, inmem, budget_mb, stored

    graphs, info, build_seconds, inmem, budget_mb, stored = once(benchmark, run)

    batch_seconds = inmem["query_seconds"]
    scan_seconds = stored["query_seconds"]
    identical = (
        stored["spans"] == inmem["spans"]
        and stored["fingerprint"] == inmem["fingerprint"]
    )
    rss_enforced = (
        STORE_RSS_FLOOR_MB > 0
        and inmem["rss_measured"]
        and stored["rss_measured"]
        and inmem["rss_delta_mb"] >= STORE_RSS_FLOOR_MB
    )
    rss_bounded = (not rss_enforced) or stored["rss_delta_mb"] <= budget_mb
    # a streaming peak below a quarter MB is allocator noise — floor the
    # denominator so the reported ratio stays meaningful
    rss_ratio = inmem["rss_delta_mb"] / max(stored["rss_delta_mb"], 0.25)
    efficiency_enforced = inmem["mine_seconds"] >= STORE_EFFICIENCY_FLOOR
    store_efficiency = inmem["mine_seconds"] / max(stored["mine_seconds"], 1e-9)
    build_edges_per_second = info["edges"] / max(build_seconds, 1e-9)
    scan_ratio = batch_seconds / max(scan_seconds, 1e-9)

    emit("\n=== Corpus store: larger-than-RAM mining and query ===")
    events_stored = sum(info["logs"].values())
    emit(
        f"{graphs} graphs / {info['edges']} edges / "
        f"{events_stored} events -> {info['file_bytes'] / 1e6:.1f} MB "
        f"store in {build_seconds:.2f}s ({build_edges_per_second:,.0f} edges/s, "
        f"{STORE_PAGE_EDGES} edges/page, x{STORE_REPLICAS} replicas, "
        f"{STORE_DAYS}-day log)"
    )
    emit(f"{'pipeline':22s} {'corpus RSS':>10s} {'mining':>9s} {'query':>9s}")
    emit(
        f"{'in-memory (full load)':22s} {inmem['rss_delta_mb']:8.1f}MB "
        f"{inmem['mine_seconds']:8.2f}s {batch_seconds:8.2f}s"
    )
    emit(
        f"{'store (streaming)':22s} {stored['rss_delta_mb']:8.1f}MB "
        f"{stored['mine_seconds']:8.2f}s {scan_seconds:8.2f}s"
    )
    if rss_enforced:
        rss_status = "enforced"
    elif not (inmem["rss_measured"] and stored["rss_measured"]):
        rss_status = "informational: no /proc peak-RSS window on this host"
    else:
        rss_status = (
            f"informational: in-memory peak {inmem['rss_delta_mb']:.1f}MB < "
            f"{STORE_RSS_FLOOR_MB:.0f}MB floor"
        )
    emit(
        f"budget {budget_mb:.1f}MB (in-memory/4, {rss_status}); "
        f"residency ratio {rss_ratio:.1f}x; mining efficiency "
        f"{store_efficiency:.2f}x; windowed scan {scan_seconds:.2f}s vs "
        f"materialize+batch {batch_seconds:.2f}s (ratio {scan_ratio:.2f}); "
        f"identical={identical}"
    )

    write_json(
        "BENCH_store.json",
        {
            "graphs": graphs,
            "edges": info["edges"],
            "events": events_stored,
            "file_mb": info["file_bytes"] / 1e6,
            "page_edges": STORE_PAGE_EDGES,
            "replicas": STORE_REPLICAS,
            "days": STORE_DAYS,
            "test_instances": TEST_INSTANCES,
            "build_seconds": build_seconds,
            "build_edges_per_second": build_edges_per_second,
            "inmem_rss_mb": inmem["rss_delta_mb"],
            "store_rss_mb": stored["rss_delta_mb"],
            "budget_mb": budget_mb,
            "rss_ratio": rss_ratio,
            "rss_measured": bool(
                inmem["rss_measured"] and stored["rss_measured"]
            ),
            "rss_enforced": rss_enforced,
            "rss_bounded": rss_bounded,
            "inmem_mine_seconds": inmem["mine_seconds"],
            "store_mine_seconds": stored["mine_seconds"],
            "store_efficiency": store_efficiency,
            "efficiency_enforced": efficiency_enforced,
            "batch_query_seconds": batch_seconds,
            "scan_query_seconds": scan_seconds,
            "scan_ratio": scan_ratio,
            "identical": identical,
        },
    )
    assert identical, (
        "store-backed mining or query diverged from the in-memory path"
    )
    if rss_enforced:
        assert rss_bounded, (
            f"streaming pipeline peaked at {stored['rss_delta_mb']:.1f}MB, "
            f"over the {budget_mb:.1f}MB budget (in-memory peak "
            f"{inmem['rss_delta_mb']:.1f}MB)"
        )
