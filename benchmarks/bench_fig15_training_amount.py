"""Figure 15: mining response time vs. amount of used training data.

Expected shape (paper): response time grows roughly linearly with the
fraction of training data used.
"""

import time

from repro.core.miner import MinerConfig
from repro.experiments.harness import mine_behavior

from benchmarks.bench_common import MINING_SECONDS, emit, once, scale_guard

FRACTIONS = (0.25, 0.5, 0.75, 1.0)
BEHAVIOR = "ftpd-login"


def test_fig15_response_time_vs_training_amount(benchmark, train):
    def run():
        table = {}
        for fraction in FRACTIONS:
            subset = train.subset(fraction)
            started = time.perf_counter()
            mine_behavior(
                subset,
                BEHAVIOR,
                MinerConfig(
                    max_edges=4,
                    min_pos_support=0.7,
                    max_seconds=MINING_SECONDS,
                ),
            )
            table[fraction] = time.perf_counter() - started
        return table

    table = once(benchmark, run)
    emit("\n=== Figure 15: response time vs amount of used training data ===")
    emit(f"{'fraction':>8s} {'seconds':>9s}")
    for fraction in FRACTIONS:
        emit(f"{fraction:8.2f} {table[fraction]:9.3f}")
    # shape: more data never cheaper by much; full data costs more than a
    # quarter — at smoke scale every run is millisecond noise, so the
    # timing shape only means something at full scale
    if scale_guard("full-data run costs more than quarter-data run"):
        assert table[1.0] >= table[0.25] * 0.8
