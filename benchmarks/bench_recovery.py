"""Durability ablation: checkpoint/WAL overhead and crash-recovery cost.

The durable serving deployment (:class:`~repro.serving.CheckpointedService`)
pays for crash-recoverability on the hot path: every ingest batch is
WAL-appended (length-prefixed, CRC32-checksummed, flushed) before it
mutates the service, and a full snapshot is cut every
``checkpoint_every`` batches.  This benchmark measures that price and
the payoff:

* **overhead** — the stream is replayed through a checkpointed wrapper
  whose store is instrumented: every ``append`` and ``snapshot`` call
  is timed individually, so the durability tax and the detection
  compute come from the *same* run (a within-run ratio, immune to the
  run-to-run wall-clock jitter that makes durable-wall vs plain-wall
  differencing useless on shared machines).  The tax-over-compute
  ratio is asserted under :data:`MAX_CHECKPOINT_OVERHEAD` (default
  10%) when the run is long enough to measure it meaningfully;
* **recovery** — the durable run is killed halfway (directory abandoned
  mid-generation, WAL handle never closed — the crash signature), timed
  through :meth:`CheckpointedService.recover`, and resumed over the
  remaining batches.

Soundness bar, asserted on every run: a plain in-memory run, the
uninterrupted durable run, and the crash+recover+resume run produce
span-identical detection sets.  Results land in ``BENCH_recovery.json``
for the CI perf-trend gate (``benchmarks/check_regression.py``).
"""

import time
from dataclasses import replace

from repro.experiments.harness import formulate_behavior_queries
from repro.serving.checkpoint import CheckpointedService, CheckpointStore
from repro.serving.service import DetectionService
from repro.syscall.collector import iter_event_batches

from benchmarks.bench_common import (
    MAX_CHECKPOINT_OVERHEAD,
    MINING_SECONDS,
    RECOVERY_CHECKPOINT_EVERY,
    RECOVERY_REPEATS,
    SERVING_BATCH,
    emit,
    once,
    write_json,
)

#: A production-like slate: every behavior, mined deeper and wider than
#: the serving ablation's, then replicated under distinct names to the
#: few-hundred-query scale of a real deployment.  The durability tax is
#: per-event I/O and does not grow with the slate, so overhead must be
#: measured against the ingest compute of a realistically loaded
#: service — a toy slate would overstate the tax by an order of
#: magnitude.
QUERY_EDGES = 4
QUERIES_PER_BEHAVIOR = 8
SLATE_REPLICAS = 4

#: Compute-time floor (seconds) under which the overhead ratio is
#: reported but not enforced: below this the run mostly measures Python
#: fixed costs and filesystem latency jitter, not the WAL/snapshot tax.
OVERHEAD_ENFORCE_FLOOR = 0.05


class _TimedStore(CheckpointStore):
    """A store that attributes its own cost, for the overhead ratio.

    Tax is accumulated in **CPU time** (``time.process_time``): the WAL
    flush syscall is a natural preemption point, so on a shared machine
    wall-clock attribution charges scheduler steal to the store and can
    inflate the measured tax several-fold.  CPU time counts the work the
    durability layer actually does (user + kernel) and transfers across
    noisy runners.
    """

    tax_cpu_seconds = 0.0

    def append(self, *args, **kwargs):
        started = time.process_time()
        try:
            return super().append(*args, **kwargs)
        finally:
            self.tax_cpu_seconds += time.process_time() - started

    def snapshot(self, *args, **kwargs):
        started = time.process_time()
        try:
            return super().snapshot(*args, **kwargs)
        finally:
            self.tax_cpu_seconds += time.process_time() - started


def _formulate_slate(train, model):
    behaviors = tuple(train.config.behaviors)
    mined = []
    for behavior in behaviors:
        mined.extend(
            formulate_behavior_queries(
                train,
                behavior,
                max_edges=QUERY_EDGES,
                top_k=QUERIES_PER_BEHAVIOR,
                max_seconds=MINING_SECONDS,
                model=model,
            )
        )
    # replicate under distinct names: evaluation cost is per registered
    # query, so replicas scale the compute denominator to production
    # slate size without touching the per-event durability I/O
    return [
        replace(query, name=f"{query.name}~r{replica}")
        for replica in range(SLATE_REPLICAS)
        for query in mined
    ]


def _span_key(detection):
    return (detection.query, detection.span)


def _plain_run(queries, batches):
    service = DetectionService()
    service.register_all(queries)
    spans = set()
    started = time.perf_counter()
    for batch in batches:
        spans.update(_span_key(d) for d in service.ingest(batch))
    seconds = time.perf_counter() - started
    service.close()
    return spans, seconds


def _durable_run(queries, batches, directory):
    """Timed durable replay; returns (spans, wall, tax) for one stream.

    ``tax`` is the wall time spent inside the store (WAL appends + the
    mid-stream snapshot cuts); ``wall - tax`` is the detection compute
    of the very same run.  The constructor's slate snapshot and the
    final cut in ``close()`` are deployment lifecycle costs, excluded
    from the steady-state window like the fleet benchmarks exclude
    worker spawn.
    """
    service = DetectionService()
    service.register_all(queries)
    store = _TimedStore(directory)
    durable = CheckpointedService(
        service,
        directory,
        checkpoint_every=RECOVERY_CHECKPOINT_EVERY,
        store=store,
    )
    store.tax_cpu_seconds = 0.0  # drop the constructor's slate snapshot
    spans = set()
    started_wall = time.perf_counter()
    started_cpu = time.process_time()
    for batch in batches:
        spans.update(_span_key(d) for d in durable.ingest(batch))
    cpu = time.process_time() - started_cpu
    wall = time.perf_counter() - started_wall
    durable.close()
    return spans, wall, cpu, store.tax_cpu_seconds


def _crash_recover_run(queries, batches, directory):
    """Kill the durable run halfway, recover, resume; returns the union."""
    split = max(1, len(batches) // 2)
    service = DetectionService()
    service.register_all(queries)
    durable = CheckpointedService(
        service, directory, checkpoint_every=RECOVERY_CHECKPOINT_EVERY
    )
    spans = set()
    for batch in batches[:split]:
        spans.update(_span_key(d) for d in durable.ingest(batch))
    # crash: no close(), no final snapshot — the directory is abandoned
    # mid-generation with an open WAL tail, exactly what kill -9 leaves
    del durable, service

    started = time.perf_counter()
    recovered_wrapper, report = CheckpointedService.recover(
        directory, checkpoint_every=RECOVERY_CHECKPOINT_EVERY
    )
    recovery_seconds = time.perf_counter() - started
    # replayed batches were already acknowledged pre-crash: their spans
    # are re-derived, not new, so the union absorbs them idempotently
    for _seq, _epoch, detections, _count in report.replayed:
        spans.update(_span_key(d) for d in detections)
    for batch in batches[split:]:
        spans.update(_span_key(d) for d in recovered_wrapper.ingest(batch))
    recovered_wrapper.close()
    return spans, recovery_seconds, report


def test_checkpoint_overhead_and_recovery(
    benchmark, train, test_data, model, tmp_path
):
    queries = _formulate_slate(train, model)
    assert queries, "query formulation mined nothing; raise BENCH knobs"
    events = test_data.events
    batches = list(iter_event_batches(events, SERVING_BATCH))

    def run():
        # best-of-N per mode denoises the millisecond-scale smoke runs;
        # span sets must agree on every repeat, not just the fastest
        reference, plain_seconds = _plain_run(queries, batches)
        for _repeat in range(RECOVERY_REPEATS - 1):
            spans, seconds = _plain_run(queries, batches)
            assert spans == reference, "plain run is nondeterministic"
            plain_seconds = min(plain_seconds, seconds)
        # the gated ratio is tax/compute in CPU time from a single
        # durable run (both halves share that run's conditions);
        # best-of-N picks the repeat with the least residual noise
        best = None
        for repeat in range(RECOVERY_REPEATS):
            spans, wall, cpu, tax = _durable_run(
                queries, batches, tmp_path / f"durable-{repeat}"
            )
            assert spans == reference, "durable detections diverge from plain"
            ratio = tax / max(cpu - tax, 1e-9)
            if best is None or ratio < best[3]:
                best = (wall, cpu, tax, ratio)
        durable_seconds, durable_cpu_seconds, tax_seconds, _ratio = best
        crash_spans, recovery_seconds, report = _crash_recover_run(
            queries, batches, tmp_path / "crash"
        )
        assert crash_spans == reference, (
            "crash+recover+resume detections diverge from the uninterrupted run"
        )
        return (
            reference,
            plain_seconds,
            durable_seconds,
            durable_cpu_seconds,
            tax_seconds,
            recovery_seconds,
            report,
        )

    (
        reference,
        plain_seconds,
        durable_seconds,
        durable_cpu_seconds,
        tax_seconds,
        recovery_seconds,
        report,
    ) = once(benchmark, run)

    compute_seconds = durable_cpu_seconds - tax_seconds
    overhead_ratio = tax_seconds / max(compute_seconds, 1e-9)
    overhead_pct = overhead_ratio * 100
    durable_efficiency = compute_seconds / max(durable_cpu_seconds, 1e-9)
    overhead_enforced = (
        MAX_CHECKPOINT_OVERHEAD > 0 and compute_seconds >= OVERHEAD_ENFORCE_FLOOR
    )

    emit("\n=== Durability: checkpoint/WAL overhead and crash recovery ===")
    emit(
        f"{len(queries)} queries over {len(events)} events in "
        f"{len(batches)} batches of {SERVING_BATCH}, snapshot every "
        f"{RECOVERY_CHECKPOINT_EVERY} batches"
    )
    emit(f"{'mode':24s} {'seconds':>9s} {'events/s':>10s}")
    plain_rate = len(events) / max(plain_seconds, 1e-9)
    durable_rate = len(events) / max(durable_seconds, 1e-9)
    emit(f"{'plain (in-memory)':24s} {plain_seconds:9.3f} {plain_rate:10,.0f}")
    emit(f"{'checkpointed (WAL)':24s} {durable_seconds:9.3f} {durable_rate:10,.0f}")
    status = "enforced" if overhead_enforced else (
        f"informational: compute {compute_seconds * 1000:.0f}ms < "
        f"{OVERHEAD_ENFORCE_FLOOR * 1000:.0f}ms floor"
    )
    emit(
        f"durability tax {tax_seconds * 1000:.1f}ms CPU over "
        f"{compute_seconds * 1000:.1f}ms detection compute = "
        f"{overhead_pct:+.1f}% overhead "
        f"(ceiling {MAX_CHECKPOINT_OVERHEAD:.0%}, {status}); recovery from "
        f"mid-stream crash took {recovery_seconds * 1000:.1f}ms "
        f"(snapshot gen {report.generation} + {report.recovered_events} "
        "WAL events replayed)"
    )

    write_json(
        "BENCH_recovery.json",
        {
            "events": len(events),
            "batches": len(batches),
            "batch_size": SERVING_BATCH,
            "queries": len(queries),
            "checkpoint_every": RECOVERY_CHECKPOINT_EVERY,
            "detections": len(reference),
            "plain_seconds": plain_seconds,
            "durable_seconds": durable_seconds,
            "durable_cpu_seconds": durable_cpu_seconds,
            "tax_cpu_seconds": tax_seconds,
            "compute_cpu_seconds": compute_seconds,
            "overhead_ratio": overhead_ratio,
            "overhead_pct": overhead_pct,
            "durable_efficiency": durable_efficiency,
            "max_overhead_pct": MAX_CHECKPOINT_OVERHEAD * 100,
            "overhead_enforced": overhead_enforced,
            "recovery_seconds": recovery_seconds,
            "recovered_generation": report.generation,
            "replayed_wal_events": report.recovered_events,
            "identical": True,  # asserted for every mode inside run()
        },
    )
    if overhead_enforced:
        assert overhead_ratio <= MAX_CHECKPOINT_OVERHEAD, (
            f"durability tax regressed: WAL+snapshot work is "
            f"{overhead_pct:.1f}% of detection compute (ceiling "
            f"{MAX_CHECKPOINT_OVERHEAD:.0%})"
        )
