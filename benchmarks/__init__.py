"""Experiment benchmarks reproducing the paper's Section 6 tables/figures.

This directory is a package so pytest imports its ``conftest.py`` as
``benchmarks.conftest`` instead of a top-level ``conftest`` module, which
used to shadow ``tests/conftest.py`` when both directories were collected
in one run.
"""
