"""Table 2: query accuracy (precision/recall) on the 12 behaviors.

Compares NodeSet, Ntemp, and TGMiner behavior queries of size 6 on the
test log.  Expected shape (paper): average precision TGMiner > Ntemp >
NodeSet with the largest gaps on the ssh family (scp-download, ssh-login,
sshd-login); recall roughly tied between TGMiner and Ntemp.
"""

from repro.experiments.harness import accuracy_for_behavior
from repro.syscall import BEHAVIOR_NAMES

from benchmarks.bench_common import emit, once

MINING_SECONDS = 20.0


def test_table2_query_accuracy(benchmark, train, test_data, engine, model):
    def run():
        return [
            accuracy_for_behavior(
                train,
                test_data,
                name,
                engine=engine,
                model=model,
                query_size=6,
                mining_seconds=MINING_SECONDS,
            )
            for name in BEHAVIOR_NAMES
        ]

    rows = once(benchmark, run)
    emit("\n=== Table 2: query accuracy on different behaviors ===")
    emit(
        f"{'Behavior':20s} | {'NodeSet P':>9s} {'Ntemp P':>8s} {'TGMiner P':>9s} | "
        f"{'NodeSet R':>9s} {'Ntemp R':>8s} {'TGMiner R':>9s}"
    )
    sums = {m: [0.0, 0.0] for m in ("nodeset", "ntemp", "tgminer")}
    for row in rows:
        cells = {}
        for method in ("nodeset", "ntemp", "tgminer"):
            pr = getattr(row, method)
            cells[method] = (pr.precision * 100, pr.recall * 100)
            sums[method][0] += pr.precision
            sums[method][1] += pr.recall
        emit(
            f"{row.behavior:20s} | {cells['nodeset'][0]:9.1f} {cells['ntemp'][0]:8.1f} "
            f"{cells['tgminer'][0]:9.1f} | {cells['nodeset'][1]:9.1f} "
            f"{cells['ntemp'][1]:8.1f} {cells['tgminer'][1]:9.1f}"
        )
    n = len(rows)
    avg = {m: (p / n * 100, r / n * 100) for m, (p, r) in sums.items()}
    emit(
        f"{'Average':20s} | {avg['nodeset'][0]:9.1f} {avg['ntemp'][0]:8.1f} "
        f"{avg['tgminer'][0]:9.1f} | {avg['nodeset'][1]:9.1f} "
        f"{avg['ntemp'][1]:8.1f} {avg['tgminer'][1]:9.1f}"
    )
    # paper's headline ordering
    assert avg["tgminer"][0] >= avg["ntemp"][0] >= avg["nodeset"][0]
    assert avg["tgminer"][0] >= 90.0
    assert avg["tgminer"][1] >= 80.0
