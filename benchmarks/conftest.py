"""Package-scoped conftest: fixture discovery only.

All fixtures and helpers live in :mod:`benchmarks.bench_common`; pytest
discovers fixtures through this re-export.  Because ``benchmarks`` is a
package, this file imports as ``benchmarks.conftest`` and no longer
shadows the test suite's top-level ``conftest`` module.
"""

from benchmarks.bench_common import engine, model, test_data, train  # noqa: F401
