"""Serving ablation: incremental streaming ingestion vs rebuild-per-batch.

A naive detection server re-freezes the window graph and re-runs every
query from scratch on each arriving batch — paying the index-build cost
the paper charges to ``PruneGI`` once *per batch*, plus a full-window
re-search per query.  The streaming subsystem instead maintains the
one-edge index and label signature online and evaluates only the batch
delta (``min_last_index`` pins matches into the delta, ``start_index``
bounds the join to the span horizon).

Both paths must produce span-identical accumulated detections — equal,
in turn, to the one-shot batch ``QueryEngine`` over the frozen whole log
— while the incremental path clears a configurable speedup floor.
Results land in ``BENCH_serving.json`` for the CI perf-trend gate
(``benchmarks/check_regression.py``).
"""

import time

from repro.experiments.harness import formulate_behavior_queries
from repro.query.engine import QueryEngine
from repro.serving.service import DetectionService
from repro.syscall.collector import iter_event_batches
from repro.syscall.events import events_to_graph

from benchmarks.bench_common import (
    MIN_STREAMING_SPEEDUP,
    MINING_SECONDS,
    SERVING_BATCH,
    SERVING_REPEATS,
    emit,
    once,
    write_json,
)

#: Behaviors whose mined queries form the registered slate.
SLATE_SIZE = 3
#: Mining depth/width for query formulation (kept shallow: the ablation
#: measures serving, not mining).
QUERY_EDGES = 3
QUERIES_PER_BEHAVIOR = 2


def _formulate_slate(train, model):
    behaviors = tuple(train.config.behaviors)[:SLATE_SIZE]
    queries = []
    for behavior in behaviors:
        queries.extend(
            formulate_behavior_queries(
                train,
                behavior,
                max_edges=QUERY_EDGES,
                top_k=QUERIES_PER_BEHAVIOR,
                max_seconds=MINING_SECONDS,
                model=model,
            )
        )
    return queries


def _streaming_run(queries, batches):
    service = DetectionService()
    for query in queries:
        service.register(query)
    spans = {query.name: set() for query in queries}
    for batch in batches:
        for detection in service.ingest(batch):
            spans[detection.query].add(detection.span)
    return spans, service


def _rebuild_run(queries, batches, window_span):
    """The naive baseline: refreeze the window and re-search every batch."""
    spans = {query.name: set() for query in queries}
    window_events = []
    seconds = 0.0
    for batch in batches:
        started = time.perf_counter()
        window_events.extend(batch)
        horizon = batch[0].time - window_span
        window_events = [e for e in window_events if e.time >= horizon]
        engine = QueryEngine(events_to_graph(window_events, name="window"))
        for query in queries:
            for span in engine.search_temporal(query.pattern, query.max_span):
                spans[query.name].add(span)
        seconds += time.perf_counter() - started
    return spans, seconds


def test_ablation_streaming_vs_rebuild(benchmark, train, test_data, model):
    queries = _formulate_slate(train, model)
    assert queries, "query formulation mined nothing; raise BENCH knobs"
    events = test_data.events
    batches = list(iter_event_batches(events, SERVING_BATCH))
    window_span = max(query.max_span for query in queries)

    def run():
        # best-of-N per mode: minimum wall time is the standard denoiser
        # for millisecond-scale runs (the perf-trend gate compares the
        # resulting ratio across CI machines); span sets must agree on
        # every repeat, not just the fastest
        streaming_spans, service = _streaming_run(queries, batches)
        for _repeat in range(SERVING_REPEATS - 1):
            spans, candidate = _streaming_run(queries, batches)
            assert spans == streaming_spans, "streaming run is nondeterministic"
            if candidate.stats.total_seconds < service.stats.total_seconds:
                service = candidate
        rebuild_spans, rebuild_seconds = _rebuild_run(queries, batches, window_span)
        for _repeat in range(SERVING_REPEATS - 1):
            spans, seconds = _rebuild_run(queries, batches, window_span)
            assert spans == rebuild_spans, "rebuild run is nondeterministic"
            rebuild_seconds = min(rebuild_seconds, seconds)
        engine = QueryEngine(test_data.graph)
        reference = {
            query.name: set(engine.search_temporal(query.pattern, query.max_span))
            for query in queries
        }
        return streaming_spans, service, rebuild_spans, rebuild_seconds, reference

    streaming_spans, service, rebuild_spans, rebuild_seconds, reference = once(
        benchmark, run
    )

    stats = service.stats
    incremental_seconds = stats.total_seconds
    speedup = rebuild_seconds / max(incremental_seconds, 1e-9)
    identical = streaming_spans == reference and rebuild_spans == reference
    p50 = stats.latency_percentile(0.5)
    p95 = stats.latency_percentile(0.95)

    emit("\n=== Ablation: streaming-incremental vs rebuild-per-batch serving ===")
    emit(
        f"{len(queries)} queries over {len(events)} events in "
        f"{len(batches)} batches of {SERVING_BATCH} (window span {window_span})"
    )
    emit(f"{'mode':24s} {'seconds':>9s} {'events/s':>10s}")
    emit(
        f"{'incremental (delta)':24s} {incremental_seconds:9.3f} "
        f"{stats.events_per_second:10,.0f}"
    )
    rebuild_rate = len(events) / max(rebuild_seconds, 1e-9)
    emit(f"{'rebuild-per-batch':24s} {rebuild_seconds:9.3f} {rebuild_rate:10,.0f}")
    emit(
        f"speedup {speedup:.2f}x; per-batch latency p50 {p50 * 1000:.2f}ms "
        f"p95 {p95 * 1000:.2f}ms; prefilter answered "
        f"{stats.queries_prefiltered} of "
        f"{stats.queries_prefiltered + stats.queries_evaluated} "
        "query-batch evaluations"
    )

    write_json(
        "BENCH_serving.json",
        {
            "events": len(events),
            "batches": len(batches),
            "batch_size": SERVING_BATCH,
            "queries": len(queries),
            "window_span": window_span,
            "incremental_seconds": incremental_seconds,
            "rebuild_seconds": rebuild_seconds,
            "speedup": speedup,
            "events_per_second": stats.events_per_second,
            "latency_p50_ms": p50 * 1000,
            "latency_p95_ms": p95 * 1000,
            "queries_prefiltered": stats.queries_prefiltered,
            "queries_evaluated": stats.queries_evaluated,
            "evicted": service.graph.stats.evicted,
            "detections": stats.detections,
            "min_speedup_required": MIN_STREAMING_SPEEDUP,
            "identical": identical,
        },
    )
    # soundness first: all three span sets must agree exactly
    assert streaming_spans == reference, "streaming detections diverge from batch"
    assert rebuild_spans == reference, "rebuild baseline diverges from batch"
    if MIN_STREAMING_SPEEDUP > 0:
        assert speedup >= MIN_STREAMING_SPEEDUP, (
            f"incremental ingestion regressed: {speedup:.2f}x < "
            f"{MIN_STREAMING_SPEEDUP}x over rebuild-per-batch"
        )
