"""Kernel micro-ablation: legacy object path vs interned-label CSR kernel.

The data-plane refactor (:mod:`repro.core.kernel`) claims two things:

1. **byte-identity** — embedding extension and the temporal index join
   produce exactly the same tables / match sequences on both paths;
2. **speed** — on data-scale graphs the kernel path wins by at least
   ``BENCH_MIN_KERNEL_SPEEDUP`` (default 2x): extension walks only the
   CSR runs incident to an embedding instead of scanning every residual
   edge, and the join reads flat int columns instead of edge objects.

The workload is a busy-host test log (the regime the query engine and
the streaming service actually operate in): a growth sweep extends every
seed pattern's embedding table for ``DEPTH`` generations following the
first ``FAN`` children, and a match sweep runs capped ``find_matches``
searches for patterns extracted from the same graph.  Both modes run the
identical workload best-of-``BENCH_KERNEL_REPEATS``; the combined ratio
lands in ``BENCH_kernel.json`` and is trend-gated by
``check_regression.py``.

The micro-ablation needs a graph large enough for the scan/incident gap
to be the signal rather than noise, so the log size has a floor of
``KERNEL_MIN_INSTANCES`` behavior instances even at smoke scale.
"""

import os
import random
import time

from repro.core.graph_index import find_matches
from repro.core.growth import extend_embeddings, seed_patterns
from repro.core.kernel import LabelInterner, build_kernels
from repro.core.pattern import TemporalPattern
from repro.syscall import build_test_data

from benchmarks.bench_common import TEST_INSTANCES, emit, once, write_json

#: Growth-sweep shape: generations per seed / children followed per level.
DEPTH = int(os.environ.get("BENCH_KERNEL_DEPTH", 2))
FAN = int(os.environ.get("BENCH_KERNEL_FAN", 3))
#: Best-of-N timing repeats per mode.
REPEATS = int(os.environ.get("BENCH_KERNEL_REPEATS", 3))
#: Combined-speedup floor the kernel path must clear (0 disables).
MIN_KERNEL_SPEEDUP = float(os.environ.get("BENCH_MIN_KERNEL_SPEEDUP", 2.0))
#: Smallest meaningful ablation input (see module docstring).
KERNEL_MIN_INSTANCES = int(os.environ.get("BENCH_KERNEL_MIN_INSTANCES", 12))

MATCH_PATTERNS = 24
MATCH_SPAN = 60


def _extract_pattern(rng, graph, max_edges=3):
    """A T-connected pattern that embeds in ``graph`` (match workload)."""
    edges = graph.edges
    start = rng.randrange(len(edges))
    chosen = [start]
    nodes = set(edges[start].endpoints())
    for idx in range(start + 1, len(edges)):
        if len(chosen) >= max_edges:
            break
        edge = edges[idx]
        if (edge.src in nodes or edge.dst in nodes) and rng.random() < 0.6:
            chosen.append(idx)
            nodes.update(edge.endpoints())
    sub_nodes: dict[int, int] = {}
    labels: list[str] = []
    sub_edges: list[tuple[int, int]] = []
    for idx in chosen:
        edge = edges[idx]
        for node in edge.endpoints():
            if node not in sub_nodes:
                sub_nodes[node] = len(labels)
                labels.append(graph.label(node))
        sub_edges.append((sub_nodes[edge.src], sub_nodes[edge.dst]))
    try:
        return TemporalPattern(labels, sub_edges)
    except Exception:
        return None


def _growth_sweep(corpus, seeds, kernels, use_kernel):
    """Extend every seed table for DEPTH generations; returns a checksum."""
    total = 0
    for key in sorted(seeds):
        frontier = [seeds[key]]
        for _ in range(DEPTH):
            nxt = []
            for table in frontier:
                ext = extend_embeddings(
                    corpus, table, kernels, use_kernel=use_kernel
                )
                total += len(ext)
                for child_key in sorted(ext)[:FAN]:
                    nxt.append(ext[child_key])
            frontier = nxt[:FAN]
    return total


def _match_sweep(patterns, graph, use_kernel):
    """Capped searches for every pattern; returns the match count."""
    total = 0
    for pattern in patterns:
        for _ in find_matches(
            pattern, graph, max_span=MATCH_SPAN, use_kernel=use_kernel
        ):
            total += 1
    return total


def _best_of(fn, *args):
    best = float("inf")
    result = None
    for _ in range(max(1, REPEATS)):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_kernel_vs_legacy_ablation(benchmark):
    instances = max(TEST_INSTANCES, KERNEL_MIN_INSTANCES)
    test = build_test_data(instances=instances)
    graph = test.graph
    graph.freeze()
    corpus = [graph]
    kernels = build_kernels(corpus, LabelInterner())
    seeds = seed_patterns(corpus, use_index=True)
    rng = random.Random(17)
    patterns = []
    while len(patterns) < MATCH_PATTERNS:
        pattern = _extract_pattern(rng, graph)
        if pattern is not None:
            patterns.append(pattern)

    def run():
        # identity first: the kernel path must reproduce the legacy
        # tables and match sequences exactly on this exact workload
        identical = True
        for key in sorted(seeds)[:40]:
            legacy_ext = extend_embeddings(corpus, seeds[key], use_kernel=False)
            kernel_ext = extend_embeddings(corpus, seeds[key], kernels)
            identical = identical and legacy_ext == kernel_ext
        for pattern in patterns:
            legacy_matches = list(
                find_matches(
                    pattern, graph, max_span=MATCH_SPAN, use_kernel=False
                )
            )
            kernel_matches = list(
                find_matches(pattern, graph, max_span=MATCH_SPAN)
            )
            identical = identical and legacy_matches == kernel_matches

        growth_legacy, checksum_legacy = _best_of(
            _growth_sweep, corpus, seeds, None, False
        )
        growth_kernel, checksum_kernel = _best_of(
            _growth_sweep, corpus, seeds, kernels, True
        )
        identical = identical and checksum_legacy == checksum_kernel
        match_legacy, count_legacy = _best_of(_match_sweep, patterns, graph, False)
        match_kernel, count_kernel = _best_of(_match_sweep, patterns, graph, True)
        identical = identical and count_legacy == count_kernel
        return {
            "identical": identical,
            "growth_legacy": growth_legacy,
            "growth_kernel": growth_kernel,
            "match_legacy": match_legacy,
            "match_kernel": match_kernel,
            "matches": count_kernel,
        }

    rows = once(benchmark, run)
    growth_speedup = rows["growth_legacy"] / max(rows["growth_kernel"], 1e-9)
    match_speedup = rows["match_legacy"] / max(rows["match_kernel"], 1e-9)
    legacy_total = rows["growth_legacy"] + rows["match_legacy"]
    kernel_total = rows["growth_kernel"] + rows["match_kernel"]
    speedup = legacy_total / max(kernel_total, 1e-9)

    emit("\n=== Kernel micro-ablation: legacy object path vs CSR kernel ===")
    emit(
        f"workload: {graph.num_edges} edges, {len(seeds)} seeds, "
        f"depth {DEPTH} fan {FAN}, {len(patterns)} match patterns "
        f"(span cap {MATCH_SPAN}), best of {REPEATS}"
    )
    emit(f"{'stage':8s} {'legacy':>9s} {'kernel':>9s} {'speedup':>8s}")
    emit(
        f"{'growth':8s} {rows['growth_legacy']:8.3f}s {rows['growth_kernel']:8.3f}s "
        f"{growth_speedup:7.2f}x"
    )
    emit(
        f"{'match':8s} {rows['match_legacy']:8.3f}s {rows['match_kernel']:8.3f}s "
        f"{match_speedup:7.2f}x"
    )
    emit(f"{'total':8s} {legacy_total:8.3f}s {kernel_total:8.3f}s {speedup:7.2f}x")

    write_json(
        "BENCH_kernel.json",
        {
            "edges": graph.num_edges,
            "instances": instances,
            "depth": DEPTH,
            "fan": FAN,
            "repeats": REPEATS,
            "matches": rows["matches"],
            "growth_legacy_seconds": rows["growth_legacy"],
            "growth_kernel_seconds": rows["growth_kernel"],
            "match_legacy_seconds": rows["match_legacy"],
            "match_kernel_seconds": rows["match_kernel"],
            "growth_speedup": growth_speedup,
            "match_speedup": match_speedup,
            "speedup": speedup,
            "identical": rows["identical"],
            "min_speedup_required": MIN_KERNEL_SPEEDUP,
        },
    )
    assert rows["identical"], "kernel path diverged from the legacy path"
    if MIN_KERNEL_SPEEDUP > 0:
        assert speedup >= MIN_KERNEL_SPEEDUP, (
            f"kernel path only {speedup:.2f}x over legacy "
            f"(floor {MIN_KERNEL_SPEEDUP}x)"
        )
