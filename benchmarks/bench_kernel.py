"""Kernel micro-ablation: legacy object path vs interned-label CSR kernel.

The data-plane refactor (:mod:`repro.core.kernel`) claims two things:

1. **byte-identity** — embedding extension and the temporal index join
   produce exactly the same tables / match sequences on both paths;
2. **speed** — on data-scale graphs the kernel path wins by at least
   ``BENCH_MIN_KERNEL_SPEEDUP`` (default 2x): extension walks only the
   CSR runs incident to an embedding instead of scanning every residual
   edge, and the join reads flat int columns instead of edge objects.

The workload is a busy-host test log (the regime the query engine and
the streaming service actually operate in): a growth sweep extends every
seed pattern's embedding table for ``DEPTH`` generations following the
first ``FAN`` children, and a match sweep runs ``find_matches`` for a
battery of behavior-query skeletons over the log's coarse-label query
view (see ``_QUERY_BATTERY`` — the selective-mask regime the vectorized
join targets, reported separately as ``match_speedup``).  Both modes run
the identical workload best-of-``BENCH_KERNEL_REPEATS``; the combined
ratio lands in ``BENCH_kernel.json`` and is trend-gated by
``check_regression.py``.

The micro-ablation needs a graph large enough for the scan/incident gap
to be the signal rather than noise, so the log size has a floor of
``KERNEL_MIN_INSTANCES`` behavior instances even at smoke scale.
"""

import os
import time

from repro.core.buffers import backend_name
from repro.core.graph import TemporalGraph
from repro.core.graph_index import DEFAULT_MATCH_LIMIT, find_matches
from repro.core.growth import extend_embeddings, seed_patterns
from repro.core.kernel import LabelInterner, build_kernels
from repro.core.pattern import TemporalPattern
from repro.syscall import build_test_data

from benchmarks.bench_common import TEST_INSTANCES, emit, once, write_json

#: Growth-sweep shape: generations per seed / children followed per level.
DEPTH = int(os.environ.get("BENCH_KERNEL_DEPTH", 2))
FAN = int(os.environ.get("BENCH_KERNEL_FAN", 3))
#: Best-of-N timing repeats per mode.
REPEATS = int(os.environ.get("BENCH_KERNEL_REPEATS", 3))
#: Combined-speedup floor the kernel path must clear (0 disables).
MIN_KERNEL_SPEEDUP = float(os.environ.get("BENCH_MIN_KERNEL_SPEEDUP", 2.0))
#: Match-sweep floor for the vectorized join (0 disables).  Only
#: enforced on the numpy backend — the stdlib ``array`` fallback trades
#: match speed for zero dependencies and is pinned by identity alone.
MIN_MATCH_SPEEDUP = float(os.environ.get("BENCH_MIN_MATCH_SPEEDUP", 1.5))
#: Smallest meaningful ablation input (see module docstring).
KERNEL_MIN_INSTANCES = int(os.environ.get("BENCH_KERNEL_MIN_INSTANCES", 12))

MATCH_SPAN = 480

#: Behavior-query skeletons for the match sweep, written over the coarse
#: entity categories of the syscall log (``proc``/``file``/``sock``).
#: Generic-category queries are the regime the vectorized join targets:
#: each label pair indexes hundreds of candidate edges spread over many
#: distinct node pairs, so a bound endpoint rejects most of a scan
#: window — exactly what the batched equality masks buy over a scalar
#: walk.  The fine-labeled log (where a label like ``proc:rsyslog``
#: names a single node and masks reject nothing) stays the *growth*
#: workload above.
_QUERY_BATTERY = [
    # proc spawns proc which touches a file (dropper chain)
    TemporalPattern(["proc", "proc", "file"], [(0, 1), (1, 2)]),
    # inbound socket drives a proc writing two files
    TemporalPattern(["sock", "proc", "file", "file"], [(0, 1), (1, 2), (1, 3)]),
    # one proc fans out over three files
    TemporalPattern(["proc", "file", "file", "file"], [(0, 1), (0, 2), (0, 3)]),
    # proc pair converging on one file (inward close)
    TemporalPattern(["proc", "proc", "file"], [(0, 1), (0, 2), (1, 2)]),
    # socket -> proc -> proc -> file exfil chain
    TemporalPattern(["sock", "proc", "proc", "file"], [(0, 1), (1, 2), (2, 3)]),
    # repeated proc-to-proc interaction
    TemporalPattern(["proc", "proc"], [(0, 1)] * 3),
    # two procs writing the same file (backward bind)
    TemporalPattern(["proc", "file", "proc"], [(0, 1), (2, 1)]),
]


def _coarse_view(graph):
    """The query view of a test log: node labels cut to entity category.

    Mirrors how behavior queries are phrased — over generic entity
    classes, not the instance-specific labels mining runs on.
    """
    view = TemporalGraph(name=f"{graph.name}:coarse")
    for node in range(graph.num_nodes):
        view.add_node(graph.label(node).split(":", 1)[0])
    for edge in graph.edges:
        view.add_edge(edge.src, edge.dst, edge.time)
    view.freeze()
    return view


def _growth_sweep(corpus, seeds, kernels, use_kernel):
    """Extend every seed table for DEPTH generations; returns a checksum."""
    total = 0
    for key in sorted(seeds):
        frontier = [seeds[key]]
        for _ in range(DEPTH):
            nxt = []
            for table in frontier:
                ext = extend_embeddings(
                    corpus, table, kernels, use_kernel=use_kernel
                )
                total += len(ext)
                for child_key in sorted(ext)[:FAN]:
                    nxt.append(ext[child_key])
            frontier = nxt[:FAN]
    return total


def _match_sweep(patterns, graph, use_kernel):
    """Capped searches for every pattern; returns the match count."""
    total = 0
    for pattern in patterns:
        for _ in find_matches(
            pattern,
            graph,
            max_span=MATCH_SPAN,
            limit=DEFAULT_MATCH_LIMIT,
            use_kernel=use_kernel,
        ):
            total += 1
    return total


def _best_of(fn, *args):
    best = float("inf")
    result = None
    for _ in range(max(1, REPEATS)):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_kernel_vs_legacy_ablation(benchmark):
    instances = max(TEST_INSTANCES, KERNEL_MIN_INSTANCES)
    test = build_test_data(instances=instances)
    graph = test.graph
    graph.freeze()
    corpus = [graph]
    kernels = build_kernels(corpus, LabelInterner())
    seeds = seed_patterns(corpus, use_index=True)
    query_view = _coarse_view(graph)
    patterns = _QUERY_BATTERY

    def run():
        # identity first: the kernel path must reproduce the legacy
        # tables and match sequences exactly on this exact workload
        identical = True
        for key in sorted(seeds)[:40]:
            legacy_ext = extend_embeddings(corpus, seeds[key], use_kernel=False)
            kernel_ext = extend_embeddings(corpus, seeds[key], kernels)
            identical = identical and legacy_ext == kernel_ext
        for pattern in patterns:
            legacy_matches = list(
                find_matches(
                    pattern,
                    query_view,
                    max_span=MATCH_SPAN,
                    limit=DEFAULT_MATCH_LIMIT,
                    use_kernel=False,
                )
            )
            kernel_matches = list(
                find_matches(
                    pattern,
                    query_view,
                    max_span=MATCH_SPAN,
                    limit=DEFAULT_MATCH_LIMIT,
                )
            )
            identical = identical and legacy_matches == kernel_matches

        growth_legacy, checksum_legacy = _best_of(
            _growth_sweep, corpus, seeds, None, False
        )
        growth_kernel, checksum_kernel = _best_of(
            _growth_sweep, corpus, seeds, kernels, True
        )
        identical = identical and checksum_legacy == checksum_kernel
        match_legacy, count_legacy = _best_of(
            _match_sweep, patterns, query_view, False
        )
        match_kernel, count_kernel = _best_of(
            _match_sweep, patterns, query_view, True
        )
        identical = identical and count_legacy == count_kernel
        return {
            "identical": identical,
            "growth_legacy": growth_legacy,
            "growth_kernel": growth_kernel,
            "match_legacy": match_legacy,
            "match_kernel": match_kernel,
            "matches": count_kernel,
        }

    rows = once(benchmark, run)
    growth_speedup = rows["growth_legacy"] / max(rows["growth_kernel"], 1e-9)
    match_speedup = rows["match_legacy"] / max(rows["match_kernel"], 1e-9)
    legacy_total = rows["growth_legacy"] + rows["match_legacy"]
    kernel_total = rows["growth_kernel"] + rows["match_kernel"]
    speedup = legacy_total / max(kernel_total, 1e-9)

    emit("\n=== Kernel micro-ablation: legacy object path vs CSR kernel ===")
    emit(
        f"workload: {graph.num_edges} edges, {len(seeds)} seeds, "
        f"depth {DEPTH} fan {FAN}, {len(patterns)} query skeletons "
        f"(span cap {MATCH_SPAN}, coarse query view), best of {REPEATS}"
    )
    emit(f"{'stage':8s} {'legacy':>9s} {'kernel':>9s} {'speedup':>8s}")
    emit(
        f"{'growth':8s} {rows['growth_legacy']:8.3f}s {rows['growth_kernel']:8.3f}s "
        f"{growth_speedup:7.2f}x"
    )
    emit(
        f"{'match':8s} {rows['match_legacy']:8.3f}s {rows['match_kernel']:8.3f}s "
        f"{match_speedup:7.2f}x"
    )
    emit(f"{'total':8s} {legacy_total:8.3f}s {kernel_total:8.3f}s {speedup:7.2f}x")
    emit(f"vector backend: {backend_name()}")

    # the match ratio is only a vectorization claim when numpy is the
    # active backend; the regression gate reads this guard (same pattern
    # as BENCH_parallel's speedup_enforced on core-starved hosts)
    match_enforced = backend_name() == "numpy" and MIN_MATCH_SPEEDUP > 0
    write_json(
        "BENCH_kernel.json",
        {
            "edges": graph.num_edges,
            "instances": instances,
            "depth": DEPTH,
            "fan": FAN,
            "repeats": REPEATS,
            "matches": rows["matches"],
            "growth_legacy_seconds": rows["growth_legacy"],
            "growth_kernel_seconds": rows["growth_kernel"],
            "match_legacy_seconds": rows["match_legacy"],
            "match_kernel_seconds": rows["match_kernel"],
            "growth_speedup": growth_speedup,
            "match_speedup": match_speedup,
            "speedup": speedup,
            "identical": rows["identical"],
            "vector_backend": backend_name(),
            "match_speedup_enforced": match_enforced,
            "min_speedup_required": MIN_KERNEL_SPEEDUP,
            "min_match_speedup_required": MIN_MATCH_SPEEDUP,
        },
    )
    assert rows["identical"], "kernel path diverged from the legacy path"
    if MIN_KERNEL_SPEEDUP > 0:
        assert speedup >= MIN_KERNEL_SPEEDUP, (
            f"kernel path only {speedup:.2f}x over legacy "
            f"(floor {MIN_KERNEL_SPEEDUP}x)"
        )
    if match_enforced:
        assert match_speedup >= MIN_MATCH_SPEEDUP, (
            f"vectorized match join only {match_speedup:.2f}x over legacy "
            f"(floor {MIN_MATCH_SPEEDUP}x, backend {backend_name()})"
        )
